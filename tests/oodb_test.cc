#include <gtest/gtest.h>

#include "oodb/navigator.h"
#include "test_util.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

using oodb::BuildSupplierObjectStore;
using oodb::ChildDrivenSuppliersForPart;
using oodb::ClassDef;
using oodb::NavigationSession;
using oodb::ObjectStore;
using oodb::Oid;
using oodb::ParentDrivenSuppliersForPart;

class OodbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(MakeTestSupplierDatabase(&db_));
    auto store = BuildSupplierObjectStore(db_);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
  }

  Database db_;
  std::unique_ptr<ObjectStore> store_;
};

TEST_F(OodbTest, LoadsAllObjects) {
  EXPECT_EQ(store_->num_objects(), 1150u);
  EXPECT_EQ(store_->Extent(*store_->ClassId("Supplier")).size(), 100u);
  EXPECT_EQ(store_->Extent(*store_->ClassId("Parts")).size(), 1000u);
  EXPECT_EQ(store_->Extent(*store_->ClassId("Agent")).size(), 50u);
}

TEST_F(OodbTest, ChildObjectsPointToParents) {
  size_t parts_id = *store_->ClassId("Parts");
  size_t supplier_id = *store_->ClassId("Supplier");
  for (Oid oid : store_->Extent(parts_id)) {
    const auto& part = store_->Get(oid);
    ASSERT_NE(part.parent, oodb::kNullOid);
    EXPECT_EQ(store_->Get(part.parent).class_id, supplier_id);
  }
}

TEST_F(OodbTest, IndexPointAndRangeProbes) {
  NavigationSession nav(store_.get());
  size_t supplier_id = *store_->ClassId("Supplier");
  auto point = nav.IndexEq(supplier_id, 0, Value::Integer(7));
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->size(), 1u);
  auto range = nav.IndexRange(supplier_id, 0, Value::Integer(10),
                              Value::Integer(19));
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 10u);
  EXPECT_EQ(nav.stats().index_probes, 2u);
  EXPECT_EQ(nav.stats().index_entries, 11u);
}

TEST_F(OodbTest, MissingIndexIsAnError) {
  NavigationSession nav(store_.get());
  size_t agent_id = *store_->ClassId("Agent");
  auto missing = nav.IndexEq(agent_id, 0, Value::Integer(1));
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(OodbTest, Example11StrategiesAgreeOnResults) {
  for (auto [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {10, 20}, {1, 100}, {50, 50}, {101, 200}}) {
    auto child = ChildDrivenSuppliersForPart(*store_, 4, lo, hi);
    auto parent = ParentDrivenSuppliersForPart(*store_, 4, lo, hi);
    EXPECT_TRUE(MultisetEquals(child.rows, parent.rows))
        << "range [" << lo << ", " << hi << "]";
  }
}

TEST_F(OodbTest, Example11ParentDrivenAvoidsWastedDerefs) {
  // Selective range: the child-driven plan dereferences all 100 parents
  // (every supplier has part 4) and keeps 11; the parent-driven plan
  // never chases a pointer it discards.
  auto child = ChildDrivenSuppliersForPart(*store_, 4, 10, 20);
  auto parent = ParentDrivenSuppliersForPart(*store_, 4, 10, 20);
  ASSERT_EQ(child.rows.size(), 11u);
  EXPECT_EQ(child.stats.pointer_derefs, 100u);
  EXPECT_EQ(parent.stats.pointer_derefs, 0u);
  EXPECT_LT(parent.stats.objects_retrieved, child.stats.objects_retrieved);
}

TEST_F(OodbTest, Example11ChildDrivenWinsOnWideRanges) {
  // When the range predicate keeps everything, the parent-driven plan
  // pays per-supplier index probes for nothing.
  auto child = ChildDrivenSuppliersForPart(*store_, 4, 1, 100);
  auto parent = ParentDrivenSuppliersForPart(*store_, 4, 1, 100);
  EXPECT_EQ(child.rows.size(), 100u);
  EXPECT_LT(child.stats.index_probes, parent.stats.index_probes);
}

TEST_F(OodbTest, InsertValidation) {
  ObjectStore store;
  ClassDef top;
  top.name = "Top";
  top.fields = {{"K", TypeId::kInteger}};
  auto top_id = store.AddClass(top);
  ASSERT_TRUE(top_id.ok());
  ClassDef child;
  child.name = "Child";
  child.fields = {{"K", TypeId::kInteger}};
  child.parent_class = "Top";
  auto child_id = store.AddClass(child);
  ASSERT_TRUE(child_id.ok());

  // Parent OID required exactly when declared.
  EXPECT_FALSE(store.Insert(*child_id, Row({Value::Integer(1)})).ok());
  auto top_oid = store.Insert(*top_id, Row({Value::Integer(1)}));
  ASSERT_TRUE(top_oid.ok());
  EXPECT_FALSE(
      store.Insert(*top_id, Row({Value::Integer(2)}), *top_oid).ok());
  // Wrong-class parent rejected.
  auto child_oid = store.Insert(*child_id, Row({Value::Integer(9)}), *top_oid);
  ASSERT_TRUE(child_oid.ok());
  EXPECT_FALSE(
      store.Insert(*child_id, Row({Value::Integer(3)}), *child_oid).ok());
  // Arity checked.
  EXPECT_FALSE(store
                   .Insert(*child_id,
                           Row({Value::Integer(1), Value::Integer(2)}),
                           *top_oid)
                   .ok());
}

TEST_F(OodbTest, IndexMaintainedAcrossInserts) {
  ObjectStore store;
  ClassDef top;
  top.name = "Top";
  top.fields = {{"K", TypeId::kInteger}};
  auto top_id = store.AddClass(top);
  ASSERT_TRUE(top_id.ok());
  ASSERT_OK(store.CreateIndex(*top_id, "K"));
  for (int64_t k : {3, 1, 2}) {
    ASSERT_TRUE(store.Insert(*top_id, Row({Value::Integer(k)})).ok());
  }
  NavigationSession nav(&store);
  auto hits = nav.IndexRange(*top_id, 0, Value::Integer(1),
                             Value::Integer(2));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
}

}  // namespace
}  // namespace uniqopt
