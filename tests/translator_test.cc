// Tests for the SQL → DL/I gateway translator (§6.1's "data access
// layer" + "post-processing layer"). Every translated program's output
// must match relational execution of the same plan.

#include <gtest/gtest.h>

#include "ims/translator.h"
#include "rewrite/rewriter.h"
#include "test_util.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

using ims::DliProgram;
using ims::GatewayResult;
using ims::RunProgram;
using ims::TranslatePlan;

class TranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(MakeTestSupplierDatabase(&db_));
    auto ims = ims::BuildSupplierIms(db_);
    ASSERT_TRUE(ims.ok()) << ims.status().ToString();
    ims_ = std::move(*ims);
  }

  /// Binds `sql`, translates, runs against IMS, and checks the rows
  /// match relational execution. Returns the program + stats.
  struct Outcome {
    DliProgram program;
    GatewayResult result;
  };
  Outcome TranslateAndVerify(const std::string& sql,
                             const ParamBindings& named_params = {},
                             bool rewrite_first = false) {
    Binder binder(&db_.catalog());
    auto bound = binder.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    PlanPtr plan = bound->plan;
    if (rewrite_first) {
      RewriteOptions opts;
      opts.join_to_subquery = true;  // navigational policy
      opts.subquery_to_join = false;
      opts.subquery_to_distinct_join = false;
      opts.join_elimination = false;
      auto r = RewritePlan(plan, opts);
      EXPECT_TRUE(r.ok());
      plan = r->plan;
    }
    auto program = TranslatePlan(*ims_, plan);
    EXPECT_TRUE(program.ok()) << sql << ": "
                              << program.status().ToString();
    std::vector<Value> params(bound->host_vars.size());
    ExecContext ctx;
    ctx.params.resize(bound->host_vars.size());
    for (const auto& [name, value] : named_params) {
      auto slot = bound->HostVarSlot(name);
      EXPECT_TRUE(slot.ok());
      params[*slot] = value;
      ctx.params[*slot] = value;
    }
    GatewayResult gw = RunProgram(*ims_, *program, params);
    auto relational = ExecutePlan(plan, db_, &ctx);
    EXPECT_TRUE(relational.ok());
    EXPECT_TRUE(MultisetEquals(gw.rows, *relational))
        << sql << "\n"
        << program->ToString() << "\ngateway rows: " << gw.rows.size()
        << " relational rows: " << relational->size();
    return {*program, std::move(gw)};
  }

  Database db_;
  std::unique_ptr<ims::ImsDatabase> ims_;
};

TEST_F(TranslatorTest, RootOnlyScan) {
  Outcome o = TranslateAndVerify("SELECT SNO, SNAME FROM SUPPLIER");
  EXPECT_TRUE(o.program.steps.empty());
  EXPECT_EQ(o.result.rows.size(), 100u);
}

TEST_F(TranslatorTest, RootWithKeyQualificationUsesIndex) {
  Outcome o =
      TranslateAndVerify("SELECT SNAME FROM SUPPLIER WHERE SNO = 17");
  ASSERT_TRUE(o.program.root_qual.has_value());
  // Key-qualified GU: one visit for the lookup plus root-loop motion.
  EXPECT_EQ(o.result.rows.size(), 1u);
}

TEST_F(TranslatorTest, RootWithPostFilter) {
  // An OR predicate cannot become an SSA; it lands in the post filter.
  Outcome o = TranslateAndVerify(
      "SELECT SNO FROM SUPPLIER WHERE SCITY = 'Toronto' OR "
      "SCITY = 'Chicago'");
  EXPECT_NE(o.program.post_filter, nullptr);
}

TEST_F(TranslatorTest, Example10JoinProgram) {
  Outcome o = TranslateAndVerify(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
      {{"PARTNO", Value::Integer(4)}});
  ASSERT_EQ(o.program.steps.size(), 1u);
  EXPECT_FALSE(o.program.steps[0].exists_only);
  ASSERT_TRUE(o.program.steps[0].qual.has_value());
  EXPECT_EQ(o.program.steps[0].qual->field, "PNO");
  // Join program: 2 GNP per supplier (the paper's wasted second call).
  EXPECT_EQ(o.result.stats.calls_by_segment.at("PARTS"), 200u);
}

TEST_F(TranslatorTest, Example10NestedProgramAfterRewrite) {
  // The join→subquery rewrite turns the same SQL into the nested
  // program with half the PARTS calls.
  Outcome o = TranslateAndVerify(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO",
      {{"PARTNO", Value::Integer(4)}}, /*rewrite_first=*/true);
  ASSERT_EQ(o.program.steps.size(), 1u);
  EXPECT_TRUE(o.program.steps[0].exists_only);
  EXPECT_EQ(o.result.stats.calls_by_segment.at("PARTS"), 100u);
}

TEST_F(TranslatorTest, ExplicitExistsQuery) {
  Outcome o = TranslateAndVerify(
      "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = 3)");
  ASSERT_EQ(o.program.steps.size(), 1u);
  EXPECT_TRUE(o.program.steps[0].exists_only);
}

TEST_F(TranslatorTest, ChildOnlyQuery) {
  Outcome o = TranslateAndVerify(
      "SELECT P.SNO, P.PNO FROM PARTS P WHERE P.COLOR = 'RED'");
  ASSERT_EQ(o.program.steps.size(), 1u);
  ASSERT_TRUE(o.program.steps[0].qual.has_value());
  EXPECT_EQ(o.program.steps[0].qual->field, "COLOR");
}

TEST_F(TranslatorTest, JoinWithProjectionFromBothSides) {
  TranslateAndVerify(
      "SELECT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
}

TEST_F(TranslatorTest, AgentsChildView) {
  TranslateAndVerify(
      "SELECT A.ANAME FROM SUPPLIER S, AGENTS A "
      "WHERE S.SNO = A.SNO AND S.SCITY = 'Toronto'");
}

TEST_F(TranslatorTest, DistinctHandledByPostProcessing) {
  Outcome o = TranslateAndVerify(
      "SELECT DISTINCT S.SCITY FROM SUPPLIER S");
  EXPECT_TRUE(o.program.distinct);
  EXPECT_LE(o.result.rows.size(), 3u);
}

TEST_F(TranslatorTest, UnsupportedShapesRejected) {
  Binder binder(&db_.catalog());
  // Set operations are not gateway-translatable.
  auto setop = binder.BindSql(
      "SELECT SNO FROM SUPPLIER INTERSECT SELECT SNO FROM AGENTS");
  ASSERT_TRUE(setop.ok());
  EXPECT_FALSE(TranslatePlan(*ims_, setop->plan).ok());
  // Child ⋈ child has no hierarchy path.
  auto two_children = binder.BindSql(
      "SELECT P.PNO FROM PARTS P, AGENTS A WHERE P.SNO = A.SNO");
  ASSERT_TRUE(two_children.ok());
  EXPECT_FALSE(TranslatePlan(*ims_, two_children->plan).ok());
  // Cartesian product without the hierarchy join.
  auto cross = binder.BindSql(
      "SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE P.PNO = 1");
  ASSERT_TRUE(cross.ok());
  EXPECT_FALSE(TranslatePlan(*ims_, cross->plan).ok());
}

TEST_F(TranslatorTest, HostVarInRootQualification) {
  Outcome o = TranslateAndVerify(
      "SELECT SNAME FROM SUPPLIER WHERE SNO = :S",
      {{"S", Value::Integer(42)}});
  ASSERT_TRUE(o.program.root_qual.has_value());
  EXPECT_TRUE(o.program.root_qual->host_var.has_value());
  EXPECT_EQ(o.result.rows.size(), 1u);
}

}  // namespace
}  // namespace uniqopt
