// Tests for the metrics/trace export plane: Prometheus text exposition
// (linted by the exporter's own lint pass), the stable metrics JSON
// schema shared with bench --metrics-json, Chrome trace-event JSON for
// Perfetto, and the name mapping from dotted metric names to
// Prometheus-legal ones.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace uniqopt {
namespace {

TEST(PrometheusNameTest, MapsDotsToUnderscores) {
  EXPECT_EQ(obs::PrometheusName("ims.dli.gnp_calls"), "ims_dli_gnp_calls");
  EXPECT_EQ(obs::PrometheusName("rewrite.rule.SubqueryToJoin.fired"),
            "rewrite_rule_SubqueryToJoin_fired");
  EXPECT_EQ(obs::PrometheusName("already_legal"), "already_legal");
}

TEST(SnapshotTest, CapturesCountersAndHistograms) {
  obs::MetricsRegistry registry;
  registry.GetCounter("exec.rows").Increment(42);
  obs::Histogram& h = registry.GetHistogram("optimizer.phase.parse.ns");
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v * 10);

  std::vector<obs::MetricSample> samples = obs::SnapshotMetrics(registry);
  ASSERT_EQ(samples.size(), 2u);

  const obs::MetricSample* counter = nullptr;
  const obs::MetricSample* hist = nullptr;
  for (const obs::MetricSample& s : samples) {
    if (s.type == obs::MetricSample::Type::kCounter) counter = &s;
    if (s.type == obs::MetricSample::Type::kHistogram) hist = &s;
  }
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(counter->name, "exec.rows");
  EXPECT_EQ(counter->value, 42u);
  EXPECT_EQ(hist->name, "optimizer.phase.parse.ns");
  EXPECT_EQ(hist->count, 100u);
  EXPECT_EQ(hist->sum, 50500u);
  ASSERT_FALSE(hist->buckets.empty());
  // Buckets are cumulative and end at the full count.
  uint64_t prev = 0;
  for (const auto& [upper, cumulative] : hist->buckets) {
    EXPECT_GE(cumulative, prev);
    prev = cumulative;
  }
  EXPECT_EQ(hist->buckets.back().second, 100u);
}

TEST(PrometheusTextTest, PassesOwnLint) {
  obs::MetricsRegistry registry;
  registry.GetCounter("ims.dli.gn_calls").Increment(7);
  registry.GetCounter("rewrite.plans").Increment();
  obs::Histogram& h = registry.GetHistogram("rewrite.plan.ns");
  h.Record(900);
  h.Record(1800);
  h.Record(250000);

  std::string text = obs::ToPrometheusText(obs::SnapshotMetrics(registry));
  Status lint = obs::LintPrometheusText(text);
  EXPECT_TRUE(lint.ok()) << lint.ToString() << "\n" << text;
  // Counters get the _total suffix; histograms the canonical series.
  EXPECT_NE(text.find("ims_dli_gn_calls_total 7"), std::string::npos);
  EXPECT_NE(text.find("rewrite_plan_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rewrite_plan_ns_count 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rewrite_plan_ns histogram"),
            std::string::npos);
}

TEST(PrometheusTextTest, EmptyRegistryLintsClean) {
  obs::MetricsRegistry registry;
  std::string text = obs::ToPrometheusText(obs::SnapshotMetrics(registry));
  Status lint = obs::LintPrometheusText(text);
  EXPECT_TRUE(lint.ok()) << lint.ToString();
}

TEST(PrometheusLintTest, RejectsMalformedExposition) {
  // Sample before its TYPE.
  EXPECT_FALSE(obs::LintPrometheusText(
                   "# HELP a_total doc\na_total 1\n# TYPE a_total counter\n")
                   .ok());
  // Illegal metric name.
  EXPECT_FALSE(obs::LintPrometheusText(
                   "# HELP 9bad doc\n# TYPE 9bad counter\n9bad 1\n")
                   .ok());
  // Non-numeric value.
  EXPECT_FALSE(obs::LintPrometheusText(
                   "# HELP a doc\n# TYPE a counter\na x\n")
                   .ok());
  // Non-cumulative histogram buckets.
  EXPECT_FALSE(obs::LintPrometheusText(
                   "# HELP h doc\n# TYPE h histogram\n"
                   "h_bucket{le=\"1\"} 5\n"
                   "h_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n"
                   "h_sum 9\nh_count 5\n")
                   .ok());
  // +Inf bucket disagrees with _count.
  EXPECT_FALSE(obs::LintPrometheusText(
                   "# HELP h doc\n# TYPE h histogram\n"
                   "h_bucket{le=\"+Inf\"} 4\n"
                   "h_sum 9\nh_count 5\n")
                   .ok());
  // Histogram family without the +Inf terminator.
  EXPECT_FALSE(obs::LintPrometheusText(
                   "# HELP h doc\n# TYPE h histogram\n"
                   "h_bucket{le=\"1\"} 5\n"
                   "h_sum 9\nh_count 5\n")
                   .ok());
}

TEST(PrometheusLintTest, RequiresHelpBeforeSamples) {
  // TYPE alone is no longer enough: the exporter always pairs HELP with
  // TYPE, and the lint holds every page to that.
  EXPECT_FALSE(obs::LintPrometheusText("# TYPE a counter\na 1\n").ok());
  EXPECT_TRUE(obs::LintPrometheusText(
                  "# HELP a doc\n# TYPE a counter\na 1\n")
                  .ok());
  // Duplicate HELP for the same family.
  EXPECT_FALSE(obs::LintPrometheusText(
                   "# HELP a doc\n# HELP a doc\n# TYPE a counter\na 1\n")
                   .ok());
  // HELP with an illegal family name.
  EXPECT_FALSE(obs::LintPrometheusText(
                   "# HELP 9bad doc\n# TYPE a counter\na 1\n")
                   .ok());
  // HELP text is optional.
  EXPECT_TRUE(obs::LintPrometheusText(
                  "# HELP a\n# TYPE a counter\na 1\n")
                  .ok());
}

TEST(PrometheusLintTest, LabelParsingIsEscapeAware) {
  // A '}' and an escaped quote inside a label value must not terminate
  // the label set or the value.
  EXPECT_TRUE(obs::LintPrometheusText(
                  "# HELP a doc\n# TYPE a counter\n"
                  "a{q=\"x}y\"} 1\n")
                  .ok());
  EXPECT_TRUE(obs::LintPrometheusText(
                  "# HELP a doc\n# TYPE a counter\n"
                  "a{q=\"x\\\"}\\\\y\"} 1\n")
                  .ok());
  // Genuinely unterminated labels still fail.
  EXPECT_FALSE(obs::LintPrometheusText(
                   "# HELP a doc\n# TYPE a counter\n"
                   "a{q=\"x 1\n")
                   .ok());
}

TEST(PrometheusEscapeTest, EscapesLabelValuesAndHelpText) {
  EXPECT_EQ(obs::PrometheusLabelEscape("plain"), "plain");
  EXPECT_EQ(obs::PrometheusLabelEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PrometheusLabelEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::PrometheusLabelEscape("a\nb"), "a\\nb");
  EXPECT_EQ(obs::PrometheusHelpEscape("a\\b\nc"), "a\\\\b\\nc");
  // Quotes are legal in HELP text and stay raw.
  EXPECT_EQ(obs::PrometheusHelpEscape("say \"hi\""), "say \"hi\"");
}

TEST(MetricsJsonTest, StableSchemaIsValidJson) {
  obs::MetricsRegistry registry;
  registry.GetCounter("rewrite.rule.RemoveRedundantDistinct.fired")
      .Increment(3);
  registry.GetHistogram("analysis.algorithm1.ns").Record(5000);

  std::string json = obs::ToMetricsJson(obs::SnapshotMetrics(registry));
  Status valid = obs::ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  // The bench gate keys on these fields; schema drift breaks baselines.
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(
      json.find(
          "\"name\": \"rewrite.rule.RemoveRedundantDistinct.fired\""),
      std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"le\""), std::string::npos);
}

TEST(ChromeTraceTest, ProducesValidTraceEventJson) {
  obs::CollectingSink sink;
  obs::Tracer tracer;
  tracer.Enable(&sink);
  {
    obs::Span outer(tracer, "optimizer.prepare");
    outer.AddAttr("sql", "SELECT DISTINCT \"quoted\"\n");
    { obs::Span inner(tracer, "optimizer.phase.parse"); }
  }
  tracer.Disable();

  std::string json = obs::ToChromeTraceJson(sink.Events());
  Status valid = obs::ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("optimizer.phase.parse"), std::string::npos);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  // The attr with quotes/newline must be escaped, not emitted raw.
  EXPECT_EQ(json.find("\"quoted\"\n"), std::string::npos);
}

TEST(ChromeTraceTest, EmptyTraceIsValid) {
  std::string json = obs::ToChromeTraceJson({});
  Status valid = obs::ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(RecorderJsonTest, QueriesDumpIsValidJson) {
  obs::QueryRecorder recorder;
  obs::QueryRecord rec;
  rec.source = "optimizer";
  rec.query = "SELECT \"S\".SNO\nFROM SUPPLIER \"S\"";
  rec.plan_hash = obs::FingerprintPlanText("plan");
  rec.phase_ns.emplace_back("parse", 1200);
  rec.rewrites.emplace_back("RemoveRedundantDistinct",
                            "DISTINCT proven redundant");
  rec.ok = true;
  recorder.Record(std::move(rec));

  obs::QueryRecord bad;
  bad.source = "optimizer";
  bad.query = "SELECT nope";
  bad.ok = false;
  bad.error = "binder: unknown table \"NOPE\"";
  recorder.Record(std::move(bad));

  std::string json = recorder.ToJson();
  Status valid = obs::ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  EXPECT_NE(json.find("\"queries\""), std::string::npos);
  EXPECT_NE(json.find("RemoveRedundantDistinct"), std::string::npos);
}

TEST(ValidateJsonTest, AcceptsAndRejects) {
  EXPECT_TRUE(obs::ValidateJson("{}").ok());
  EXPECT_TRUE(
      obs::ValidateJson("[1, 2.5, -3e2, \"x\\n\", null, true]").ok());
  EXPECT_TRUE(obs::ValidateJson("{\"a\": {\"b\": []}}").ok());
  EXPECT_FALSE(obs::ValidateJson("").ok());
  EXPECT_FALSE(obs::ValidateJson("{").ok());
  EXPECT_FALSE(obs::ValidateJson("{\"a\": }").ok());
  EXPECT_FALSE(obs::ValidateJson("{} extra").ok());
  EXPECT_FALSE(obs::ValidateJson("'single'").ok());
  EXPECT_FALSE(obs::ValidateJson("\"raw\ncontrol\"").ok());
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::JsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
}

}  // namespace
}  // namespace uniqopt
