// Tests for the §7 extension: join elimination via inclusion
// dependencies (King's semantic optimization, named by the paper as
// future work), plus FOREIGN KEY catalog/storage behaviour.

#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "test_util.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

class JoinEliminationTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK(MakeTestSupplierDatabase(&db_)); }

  RewriteResult RewriteAndCheck(const std::string& sql,
                                const ParamBindings& params = {},
                                const RewriteOptions& options = {}) {
    Binder binder(&db_.catalog());
    auto bound = binder.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    auto rewritten = RewritePlan(bound->plan, options);
    EXPECT_TRUE(rewritten.ok()) << rewritten.status().ToString();
    ExecContext c1;
    ExecContext c2;
    c1.params.resize(bound->host_vars.size());
    c2.params.resize(bound->host_vars.size());
    for (const auto& [name, value] : params) {
      auto slot = bound->HostVarSlot(name);
      EXPECT_TRUE(slot.ok());
      c1.params[*slot] = value;
      c2.params[*slot] = value;
    }
    auto before = ExecutePlan(bound->plan, db_, &c1);
    auto after = ExecutePlan(rewritten->plan, db_, &c2);
    EXPECT_TRUE(before.ok());
    EXPECT_TRUE(after.ok());
    EXPECT_TRUE(MultisetEquals(*before, *after))
        << sql << "\n"
        << rewritten->plan->ToString();
    return *rewritten;
  }

  Database db_;
};

TEST_F(JoinEliminationTest, ForeignKeyParsedIntoCatalog) {
  ASSERT_OK_AND_ASSIGN(const TableDef* parts, db_.catalog().GetTable("PARTS"));
  ASSERT_EQ(parts->foreign_keys().size(), 1u);
  const ForeignKeyConstraint& fk = parts->foreign_keys()[0];
  EXPECT_EQ(fk.ref_table, "SUPPLIER");
  EXPECT_EQ(fk.columns, (std::vector<size_t>{0}));
  EXPECT_EQ(fk.ref_columns, (std::vector<std::string>{"SNO"}));
}

TEST_F(JoinEliminationTest, ForeignKeyValidationAtCatalog) {
  Database db;
  // Unknown referenced table.
  EXPECT_FALSE(db.ExecuteDdl("CREATE TABLE C (X INTEGER, "
                             "FOREIGN KEY (X) REFERENCES NOPE (K))")
                   .ok());
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE P (K INTEGER, V INTEGER, "
                          "PRIMARY KEY (K))"));
  // Referenced column is not a candidate key.
  EXPECT_FALSE(db.ExecuteDdl("CREATE TABLE C (X INTEGER, "
                             "FOREIGN KEY (X) REFERENCES P (V))")
                   .ok());
  // Type mismatch.
  EXPECT_FALSE(db.ExecuteDdl("CREATE TABLE C (X VARCHAR(5), "
                             "FOREIGN KEY (X) REFERENCES P (K))")
                   .ok());
  // Valid, with the column-level shorthand.
  EXPECT_OK(db.ExecuteDdl(
      "CREATE TABLE C (X INTEGER REFERENCES P (K), Y INTEGER)"));
}

TEST_F(JoinEliminationTest, StorageEnforcesForeignKeys) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE P (K INTEGER, PRIMARY KEY (K))"));
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE C (X INTEGER, FOREIGN KEY (X) REFERENCES P (K))"));
  ASSERT_OK_AND_ASSIGN(Table * p, db.GetTable("P"));
  ASSERT_OK_AND_ASSIGN(Table * c, db.GetTable("C"));
  // Orphan rejected.
  EXPECT_EQ(c->InsertValues({Value::Integer(1)}).code(),
            StatusCode::kConstraintViolation);
  ASSERT_OK(p->InsertValues({Value::Integer(1)}));
  EXPECT_OK(c->InsertValues({Value::Integer(1)}));
  // NULL referencing column is exempt (MATCH SIMPLE).
  EXPECT_OK(c->InsertValues({Value::Null(TypeId::kInteger)}));
}

TEST_F(JoinEliminationTest, EliminatesPureKeyJoin) {
  // SUPPLIER contributes nothing but the FK match: PARTS.SNO is NOT NULL
  // and references SUPPLIER.SNO, so the join is a no-op.
  RewriteResult r = RewriteAndCheck(
      "SELECT P.PNO, P.PNAME FROM PARTS P, SUPPLIER S "
      "WHERE P.SNO = S.SNO");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kJoinElimination));
  // The SUPPLIER get must be gone.
  EXPECT_EQ(r.plan->ToString().find("SUPPLIER"), std::string::npos)
      << r.plan->ToString();
}

TEST_F(JoinEliminationTest, KeepsJoinWhenVictimIsProjected) {
  RewriteResult r = RewriteAndCheck(
      "SELECT P.PNO, S.SNAME FROM PARTS P, SUPPLIER S "
      "WHERE P.SNO = S.SNO");
  EXPECT_FALSE(r.Applied(RewriteRuleId::kJoinElimination));
}

TEST_F(JoinEliminationTest, KeepsJoinWhenVictimIsFiltered) {
  // The SCITY predicate makes SUPPLIER genuinely selective.
  RewriteResult r = RewriteAndCheck(
      "SELECT P.PNO FROM PARTS P, SUPPLIER S "
      "WHERE P.SNO = S.SNO AND S.SCITY = 'Toronto'");
  EXPECT_FALSE(r.Applied(RewriteRuleId::kJoinElimination));
}

TEST_F(JoinEliminationTest, KeepsJoinWithoutDeclaredForeignKey) {
  // Same query, but the schema lacks inclusion dependencies.
  Database db;
  SupplierSchemaOptions opts;
  opts.with_foreign_keys = false;
  ASSERT_OK(CreateSupplierSchema(&db, opts));
  ASSERT_OK(PopulateSupplierDatabase(&db));
  Binder binder(&db.catalog());
  auto bound = binder.BindSql(
      "SELECT P.PNO, P.PNAME FROM PARTS P, SUPPLIER S "
      "WHERE P.SNO = S.SNO");
  ASSERT_TRUE(bound.ok());
  auto r = RewritePlan(bound->plan);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->Applied(RewriteRuleId::kJoinElimination));
}

TEST_F(JoinEliminationTest, KeepsJoinWhenReferencingColumnNullable) {
  // A nullable FK column means rows with NULL would be dropped by the
  // join but kept after elimination — the rewrite must not fire.
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE P (K INTEGER, PRIMARY KEY (K))"));
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE C (X INTEGER, V INTEGER, "
      "FOREIGN KEY (X) REFERENCES P (K))"));
  ASSERT_OK_AND_ASSIGN(Table * p, db.GetTable("P"));
  ASSERT_OK_AND_ASSIGN(Table * c, db.GetTable("C"));
  ASSERT_OK(p->InsertValues({Value::Integer(1)}));
  ASSERT_OK(c->InsertValues({Value::Integer(1), Value::Integer(10)}));
  ASSERT_OK(c->InsertValues(
      {Value::Null(TypeId::kInteger), Value::Integer(20)}));
  Binder binder(&db.catalog());
  auto bound =
      binder.BindSql("SELECT C.V FROM C, P WHERE C.X = P.K");
  ASSERT_TRUE(bound.ok());
  auto r = RewritePlan(bound->plan);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->Applied(RewriteRuleId::kJoinElimination));
  // And indeed the join drops the NULL row.
  ExecContext ctx;
  auto rows = ExecutePlan(bound->plan, db, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(JoinEliminationTest, EliminationChainsWithOtherPredicates) {
  RewriteResult r = RewriteAndCheck(
      "SELECT P.PNO, P.COLOR FROM PARTS P, SUPPLIER S "
      "WHERE P.SNO = S.SNO AND P.COLOR = 'RED'");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kJoinElimination));
}

TEST_F(JoinEliminationTest, EliminatesThroughExistsRewrite) {
  // EXISTS over the FK target: Theorem 2 converts to a join, which the
  // inclusion dependency then eliminates entirely — the subquery was a
  // tautology.
  RewriteResult r = RewriteAndCheck(
      "SELECT P.PNO, P.PNAME FROM PARTS P WHERE EXISTS "
      "(SELECT * FROM SUPPLIER S WHERE S.SNO = P.SNO)");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kSubqueryToJoin));
  EXPECT_TRUE(r.Applied(RewriteRuleId::kJoinElimination));
  EXPECT_EQ(r.plan->ToString().find("SUPPLIER"), std::string::npos)
      << r.plan->ToString();
}

TEST_F(JoinEliminationTest, ThreeWayJoinEliminatesOnlyRedundantTable) {
  RewriteResult r = RewriteAndCheck(
      "SELECT A.ANO, P.PNO FROM AGENTS A, SUPPLIER S, PARTS P "
      "WHERE A.SNO = S.SNO AND P.SNO = S.SNO AND P.SNO = A.SNO");
  // SUPPLIER is joined purely through FKs from both AGENTS and PARTS;
  // with A.SNO = P.SNO retained the elimination is sound.
  EXPECT_TRUE(r.Applied(RewriteRuleId::kJoinElimination));
  EXPECT_EQ(r.plan->ToString().find("SUPPLIER"), std::string::npos)
      << r.plan->ToString();
  EXPECT_NE(r.plan->ToString().find("AGENTS"), std::string::npos);
  EXPECT_NE(r.plan->ToString().find("PARTS"), std::string::npos);
}

TEST_F(JoinEliminationTest, DisabledByOption) {
  RewriteOptions opts;
  opts.join_elimination = false;
  RewriteResult r = RewriteAndCheck(
      "SELECT P.PNO, P.PNAME FROM PARTS P, SUPPLIER S "
      "WHERE P.SNO = S.SNO",
      {}, opts);
  EXPECT_FALSE(r.Applied(RewriteRuleId::kJoinElimination));
}

}  // namespace
}  // namespace uniqopt
