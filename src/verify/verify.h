#ifndef UNIQOPT_VERIFY_VERIFY_H_
#define UNIQOPT_VERIFY_VERIFY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/algorithm1.h"
#include "analysis/uniqueness.h"
#include "equiv/equiv.h"
#include "plan/plan.h"
#include "rewrite/rewriter.h"

namespace uniqopt {
namespace verify {

/// The four analyzers of the post-optimization verifier. Each violation
/// names the analyzer that raised it so dashboards and tests can slice
/// by failure class.
enum class Analyzer {
  kPlanLint,      ///< structural invariants of the optimized plan tree
  kProofChecker,  ///< independent re-derivation of uniqueness proofs
  kNullAudit,     ///< Theorem 3 null-safe `=!` correlation audit
  kEquivProver,   ///< symbolic bag-semantics equivalence certificates
};

const char* AnalyzerName(Analyzer a);

/// Closed set of verifier finding codes. An enum rather than free-form
/// strings so a new analyzer cannot silently collide slugs and every
/// switch over codes is exhaustiveness-checked under -Werror.
enum class ViolationCode {
  // plan-lint
  kMissingOptimizedPlan,
  kDanglingColumnRef,
  kSchemaWidthMismatch,
  kSchemaTypeMismatch,
  kSetOpIncompatibleOperands,
  kRewriteWithoutProvenCondition,
  kRewriteMissingSubtrees,
  kRewriteMissingEvidence,
  kDistinctDroppedWithoutProof,
  // proof-checker
  kProofWithoutConclusion,
  kProofKeyOutcomeInconsistent,
  kProofNotRecheckable,
  kProofDivergence,
  kProofClaimMismatch,
  // null-audit
  kCorrelationWidthMismatch,
  kPlainEqOnNullable,
  kMalformedCorrelationConjunct,
  kMissingCorrelationColumn,
  // equiv-prover
  kEquivRefuted,
};

/// The stable machine-readable slug, e.g. "dangling-column-ref".
const char* ViolationCodeName(ViolationCode code);

/// One verifier finding. `code` is the stable machine-readable slug;
/// `message` carries the human detail; `context` is a rendering of the
/// offending node, proof, or counterexample witness for diagnostics.
struct Violation {
  Analyzer analyzer = Analyzer::kPlanLint;
  ViolationCode code = ViolationCode::kMissingOptimizedPlan;
  std::string message;
  std::string context;

  std::string ToString() const;
};

/// Aggregate result of one verifier run. Feeds the
/// `verify.plan.violations` counter, the flight recorder's QueryRecord,
/// EXPLAIN output, and the shell's \verify command.
struct VerifyReport {
  std::vector<Violation> violations;
  /// One equivalence certificate per applied rewrite, in application
  /// order (empty when the prover is off or nothing was rewritten).
  std::vector<equiv::Certificate> certificates;
  /// Work counters, for "the verifier actually looked" assertions.
  size_t nodes_checked = 0;
  size_t proofs_checked = 0;
  size_t correlations_audited = 0;
  /// Equivalence-prover verdict tallies over `certificates`.
  size_t equiv_proven = 0;
  size_t equiv_unproven = 0;
  size_t equiv_refuted = 0;

  bool Clean() const { return violations.empty(); }

  /// One-line rollup, e.g. "clean (17 nodes, 2 proofs, 1 correlation)".
  std::string Summary() const;
  /// Multi-line report: the summary plus one block per violation.
  std::string ToString() const;
};

/// Everything the verifier needs about one prepared query. The verifier
/// lives below the optimizer facade, so it takes the pieces rather than
/// a PreparedQuery. Only `optimized` is mandatory; absent fields skip
/// the checks that need them.
struct VerifyInput {
  /// Bound, pre-rewrite plan (enables the DISTINCT-dropped lint).
  PlanPtr original;
  /// The plan the optimizer will execute. Required.
  PlanPtr optimized;
  /// Rewrite audit trail with attached evidence.
  const std::vector<AppliedRewrite>* rewrites = nullptr;
  /// The optimizer's standalone DISTINCT verdict for `original`.
  const UniquenessVerdict* analysis = nullptr;
  /// The production analysis switches in effect; the reference
  /// implementation honors the same ablation settings so a disabled
  /// ingredient is not reported as a divergence.
  Algorithm1Options options;
  /// Run the symbolic equivalence prover over `rewrites`. A refuted
  /// certificate raises a kEquivRefuted violation; unproven ones are
  /// tallied but are not failures.
  bool check_equiv = equiv::kCheckEquivByDefault;
};

/// Runs all three analyzers and returns the combined report. Increments
/// verify.runs / verify.clean / verify.plan.violations.
VerifyReport VerifyPlan(const VerifyInput& input);

}  // namespace verify
}  // namespace uniqopt

#endif  // UNIQOPT_VERIFY_VERIFY_H_
