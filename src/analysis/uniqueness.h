#ifndef UNIQOPT_ANALYSIS_UNIQUENESS_H_
#define UNIQOPT_ANALYSIS_UNIQUENESS_H_

#include <string>
#include <vector>

#include "analysis/algorithm1.h"
#include "analysis/properties.h"
#include "common/result.h"
#include "plan/plan.h"

namespace uniqopt {

/// Which detector produced a verdict.
enum class DetectorKind {
  kAlgorithm1,     ///< the paper's §4 algorithm over the spec shape
  kFdPropagation,  ///< general FD/key propagation (handles set ops etc.)
};

/// Verdict of the DISTINCT analysis for one query plan.
struct UniquenessVerdict {
  /// True when the plan carries a DISTINCT at the top.
  bool has_distinct = false;
  /// True when the analyzer proved the DISTINCT redundant (`π_Dist ≡
  /// π_All` for this query, Theorem 1's condition).
  bool distinct_unnecessary = false;
  DetectorKind detector = DetectorKind::kAlgorithm1;
  std::vector<std::string> trace;
  /// Structured proof (Algorithm 1 detector only; `proof.recorded` tells).
  ProofTrace proof;
  /// On NO from Algorithm 1: the minimal missing facts that would have
  /// flipped the verdict (feeds the constraint advisor).
  std::vector<obs::NearMiss> near_misses;

  /// Multi-line explanation of why the verdict holds: the structured
  /// proof when one was recorded, the flat trace otherwise.
  std::string ExplainProof() const;
};

/// Tests whether the top-level DISTINCT of `plan` is redundant using the
/// paper's Algorithm 1 (requires the plan to be a select-project-product
/// spec; other shapes yield kUnsupported).
Result<UniquenessVerdict> AnalyzeDistinctAlgorithm1(
    const PlanPtr& plan, const Algorithm1Options& options = {});

/// Tests the same question by general FD/key propagation (DeriveProperties):
/// handles every plan shape, including projections over set operations and
/// semi-joins. Strictly subsumes Algorithm 1's YES set on spec queries
/// when the same switches are enabled.
UniquenessVerdict AnalyzeDistinctFd(const PlanPtr& plan,
                                    const AnalysisOptions& options = {});

/// Combined analyzer: Algorithm 1 first (cheap, and the published
/// artifact), falling back to FD propagation for shapes it cannot see.
UniquenessVerdict AnalyzeDistinct(const PlanPtr& plan,
                                  const Algorithm1Options& options = {});

}  // namespace uniqopt

#endif  // UNIQOPT_ANALYSIS_UNIQUENESS_H_
