file(REMOVE_RECURSE
  "libuniqopt_parser.a"
)
