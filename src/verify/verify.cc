#include "verify/verify.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "verify/null_audit.h"
#include "verify/plan_lint.h"
#include "verify/proof_checker.h"

namespace uniqopt {
namespace verify {

const char* AnalyzerName(Analyzer a) {
  switch (a) {
    case Analyzer::kPlanLint:
      return "plan-lint";
    case Analyzer::kProofChecker:
      return "proof-checker";
    case Analyzer::kNullAudit:
      return "null-audit";
    case Analyzer::kEquivProver:
      return "equiv-prover";
  }
  return "unknown";
}

const char* ViolationCodeName(ViolationCode code) {
  switch (code) {
    case ViolationCode::kMissingOptimizedPlan:
      return "missing-optimized-plan";
    case ViolationCode::kDanglingColumnRef:
      return "dangling-column-ref";
    case ViolationCode::kSchemaWidthMismatch:
      return "schema-width-mismatch";
    case ViolationCode::kSchemaTypeMismatch:
      return "schema-type-mismatch";
    case ViolationCode::kSetOpIncompatibleOperands:
      return "setop-incompatible-operands";
    case ViolationCode::kRewriteWithoutProvenCondition:
      return "rewrite-without-proven-condition";
    case ViolationCode::kRewriteMissingSubtrees:
      return "rewrite-missing-subtrees";
    case ViolationCode::kRewriteMissingEvidence:
      return "rewrite-missing-evidence";
    case ViolationCode::kDistinctDroppedWithoutProof:
      return "distinct-dropped-without-proof";
    case ViolationCode::kProofWithoutConclusion:
      return "proof-without-conclusion";
    case ViolationCode::kProofKeyOutcomeInconsistent:
      return "proof-key-outcome-inconsistent";
    case ViolationCode::kProofNotRecheckable:
      return "proof-not-recheckable";
    case ViolationCode::kProofDivergence:
      return "proof-divergence";
    case ViolationCode::kProofClaimMismatch:
      return "proof-claim-mismatch";
    case ViolationCode::kCorrelationWidthMismatch:
      return "correlation-width-mismatch";
    case ViolationCode::kPlainEqOnNullable:
      return "plain-eq-on-nullable";
    case ViolationCode::kMalformedCorrelationConjunct:
      return "malformed-correlation-conjunct";
    case ViolationCode::kMissingCorrelationColumn:
      return "missing-correlation-column";
    case ViolationCode::kEquivRefuted:
      return "equiv-refuted";
  }
  return "unknown";
}

std::string Violation::ToString() const {
  std::string out = std::string("[") + AnalyzerName(analyzer) + "/" +
                    ViolationCodeName(code) + "] " + message;
  if (!context.empty()) {
    out += "\n    ";
    // Indent multi-line context (plan renderings) under the finding.
    for (char c : context) {
      out += c;
      if (c == '\n') out += "    ";
    }
    while (!out.empty() && (out.back() == ' ' || out.back() == '\n')) {
      out.pop_back();
    }
  }
  return out;
}

std::string VerifyReport::Summary() const {
  std::string out =
      Clean() ? "clean"
              : std::to_string(violations.size()) + " violation(s)";
  out += " (" + std::to_string(nodes_checked) + " node(s), " +
         std::to_string(proofs_checked) + " proof(s), " +
         std::to_string(correlations_audited) + " correlation(s)";
  if (!certificates.empty()) {
    out += ", equiv " + std::to_string(equiv_proven) + " proven / " +
           std::to_string(equiv_unproven) + " unproven / " +
           std::to_string(equiv_refuted) + " refuted";
  }
  out += ")";
  return out;
}

std::string VerifyReport::ToString() const {
  std::string out = Summary() + "\n";
  for (const Violation& v : violations) {
    out += "  " + v.ToString() + "\n";
  }
  for (const equiv::Certificate& cert : certificates) {
    std::string line = cert.ToString();
    // Indent the witness lines under the certificate.
    out += "  ";
    for (char c : line) {
      out += c;
      if (c == '\n') out += "    ";
    }
    out += "\n";
  }
  return out;
}

namespace {

/// The equivalence-prover pass: one certificate per applied rewrite.
/// Refutations become violations; unproven verdicts are honest coverage
/// gaps and only tallied.
void CertifyRewrites(const VerifyInput& input, VerifyReport* report) {
  if (!input.check_equiv || input.rewrites == nullptr) return;
  for (const AppliedRewrite& rw : *input.rewrites) {
    equiv::Certificate cert = equiv::CertifyRewrite(rw);
    switch (cert.verdict) {
      case equiv::Verdict::kProven:
        ++report->equiv_proven;
        break;
      case equiv::Verdict::kUnproven:
        ++report->equiv_unproven;
        break;
      case equiv::Verdict::kRefuted: {
        ++report->equiv_refuted;
        Violation v;
        v.analyzer = Analyzer::kEquivProver;
        v.code = ViolationCode::kEquivRefuted;
        v.message = cert.rule + " [" + cert.method + "]: " + cert.detail;
        v.context = cert.witness;
        report->violations.push_back(std::move(v));
        break;
      }
    }
    report->certificates.push_back(std::move(cert));
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (report->equiv_proven > 0) {
    reg.GetCounter("equiv.proven").Increment(report->equiv_proven);
  }
  if (report->equiv_unproven > 0) {
    reg.GetCounter("equiv.unproven").Increment(report->equiv_unproven);
  }
  if (report->equiv_refuted > 0) {
    reg.GetCounter("equiv.refuted").Increment(report->equiv_refuted);
  }
}

}  // namespace

VerifyReport VerifyPlan(const VerifyInput& input) {
  obs::Span span("verify.plan");
  VerifyReport report;
  LintPlan(input, &report);
  CheckProofs(input, &report);
  AuditNullSemantics(input, &report);
  CertifyRewrites(input, &report);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("verify.runs").Increment();
  if (report.Clean()) {
    reg.GetCounter("verify.clean").Increment();
  } else {
    reg.GetCounter("verify.plan.violations")
        .Increment(report.violations.size());
  }
  span.AddAttr("violations", static_cast<uint64_t>(report.violations.size()));
  span.AddAttr("nodes_checked",
               static_cast<uint64_t>(report.nodes_checked));
  return report;
}

}  // namespace verify
}  // namespace uniqopt
