file(REMOVE_RECURSE
  "libuniqopt_fd.a"
)
