# Empty dependencies file for uniqopt_common.
# This may be replaced when dependencies are built.
