#ifndef UNIQOPT_CATALOG_CATALOG_H_
#define UNIQOPT_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table_def.h"
#include "common/result.h"

namespace uniqopt {

/// Registry of base-table definitions. Names are case-insensitive and
/// canonicalized to upper case, mirroring SQL identifier folding.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table definition; fails on name collision.
  Status AddTable(TableDef def);

  /// Looks up a table by (case-insensitive) name.
  Result<const TableDef*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Removes a table; fails if absent.
  Status DropTable(const std::string& name);

  /// All table names in registration order.
  std::vector<std::string> TableNames() const;

  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, TableDef> tables_;  // keyed by upper-cased name
  std::vector<std::string> order_;
};

}  // namespace uniqopt

#endif  // UNIQOPT_CATALOG_CATALOG_H_
