#ifndef UNIQOPT_PARSER_LEXER_H_
#define UNIQOPT_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace uniqopt {

enum class TokenType {
  kIdentifier,   ///< bare identifier or keyword (upper-cased in `text`)
  kInteger,      ///< integer literal
  kDouble,       ///< floating literal
  kString,       ///< 'quoted string' (unescaped content in `text`)
  kHostVar,      ///< :NAME host variable (name in `text`, upper-cased)
  kSymbol,       ///< punctuation / operator; `text` is the symbol
  kEndOfInput,
};

struct Token {
  TokenType type = TokenType::kEndOfInput;
  std::string text;       ///< canonical text (identifiers upper-cased)
  std::string original;   ///< original spelling (string literals verbatim)
  size_t offset = 0;      ///< byte offset into the SQL text
};

/// Tokenizes `sql`. Identifiers/keywords fold to upper case; string
/// literals keep their exact content ('' escapes a quote). `--` comments
/// run to end of line. Always appends a kEndOfInput token on success.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace uniqopt

#endif  // UNIQOPT_PARSER_LEXER_H_
