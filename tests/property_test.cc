#include <gtest/gtest.h>

#include "analysis/uniqueness.h"
#include "parser/parser.h"
#include "rewrite/rewriter.h"
#include "test_util.h"
#include "workload/random_query.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

/// Shared database with NULLs sprinkled into nullable columns so the
/// three-valued-logic paths are genuinely exercised.
class PropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_OK(CreateSupplierSchema(&db_));
    SupplierDataOptions data;
    data.num_suppliers = 40;
    data.parts_per_supplier = 6;
    data.num_agents = 25;
    data.null_fraction = 0.15;
    data.seed = 7;
    ASSERT_OK(PopulateSupplierDatabase(&db_, data));
  }

  Database db_;
};

/// Invariant 1 (soundness of Theorem 1's detectors): whenever any
/// analyzer answers YES for a DISTINCT query, executing the same query
/// *without* duplicate elimination yields no `=!`-duplicate rows.
TEST_P(PropertyTest, AnalyzerYesImpliesNoDuplicates) {
  RandomQueryOptions qopts;
  qopts.seed = GetParam();
  RandomQueryGenerator gen(qopts);
  Binder binder(&db_.catalog());
  int yes_count = 0;
  for (int i = 0; i < 120; ++i) {
    std::string sql = gen.NextQuery();
    auto bound = binder.BindSql(sql);
    ASSERT_TRUE(bound.ok()) << sql << ": " << bound.status().ToString();
    UniquenessVerdict verdict = AnalyzeDistinct(bound->plan);
    if (!verdict.has_distinct || !verdict.distinct_unnecessary) continue;
    ++yes_count;
    // Execute the ALL-mode variant and assert duplicate-freedom.
    const ProjectNode* project = As<ProjectNode>(bound->plan);
    ASSERT_NE(project, nullptr) << sql;
    PlanPtr all_mode = ProjectNode::Make(project->input(), DuplicateMode::kAll,
                                         project->columns());
    ExecContext ctx;
    auto rows = ExecutePlan(all_mode, db_, &ctx);
    ASSERT_TRUE(rows.ok()) << sql;
    EXPECT_FALSE(HasDuplicates(*rows))
        << sql << "\n"
        << testing::PrintToString(verdict.trace);
  }
  // The generator must produce at least a few detectable queries, or the
  // property is vacuous.
  EXPECT_GT(yes_count, 3) << "generator produced too few YES queries";
}

/// Invariant 2: the full rewrite pipeline preserves multiset semantics
/// on arbitrary generated queries.
TEST_P(PropertyTest, RewritePreservesMultisetSemantics) {
  RandomQueryOptions qopts;
  qopts.seed = GetParam() * 7919 + 13;
  qopts.always_distinct = false;
  qopts.group_by_probability = 0.25;
  RandomQueryGenerator gen(qopts);
  Binder binder(&db_.catalog());
  int applied_count = 0;
  for (int i = 0; i < 120; ++i) {
    std::string sql = gen.NextQuery();
    auto bound = binder.BindSql(sql);
    ASSERT_TRUE(bound.ok()) << sql;
    RewriteOptions ropts;
    ropts.join_to_subquery = (i % 2 == 0);
    if (ropts.join_to_subquery) {
      ropts.subquery_to_join = false;
      ropts.subquery_to_distinct_join = false;
    }
    auto rewritten = RewritePlan(bound->plan, ropts);
    ASSERT_TRUE(rewritten.ok()) << sql;
    if (!rewritten->applied.empty()) ++applied_count;
    ExecContext ctx1;
    ExecContext ctx2;
    auto before = ExecutePlan(bound->plan, db_, &ctx1);
    auto after = ExecutePlan(rewritten->plan, db_, &ctx2);
    ASSERT_TRUE(before.ok()) << sql;
    ASSERT_TRUE(after.ok()) << sql;
    EXPECT_TRUE(MultisetEquals(*before, *after))
        << sql << "\noriginal:\n"
        << bound->plan->ToString() << "rewritten:\n"
        << rewritten->plan->ToString();
  }
  EXPECT_GT(applied_count, 5) << "rewrites barely fired; property vacuous";
}

/// Invariant 3: every physical strategy computes the same multiset.
TEST_P(PropertyTest, PhysicalStrategiesAgree) {
  RandomQueryOptions qopts;
  qopts.seed = GetParam() * 104729 + 1;
  qopts.always_distinct = false;
  qopts.group_by_probability = 0.2;
  RandomQueryGenerator gen(qopts);
  for (int i = 0; i < 60; ++i) {
    std::string sql = gen.NextQuery();
    PhysicalOptions hash_opts;
    hash_opts.join = PhysicalOptions::JoinStrategy::kHash;
    hash_opts.distinct = PhysicalOptions::DistinctStrategy::kHash;
    PhysicalOptions nl_opts;
    nl_opts.join = PhysicalOptions::JoinStrategy::kNestedLoop;
    nl_opts.distinct = PhysicalOptions::DistinctStrategy::kSort;
    nl_opts.predicate_pushdown = false;
    auto a = RunSql(db_, sql, {}, hash_opts);
    auto b = RunSql(db_, sql, {}, nl_opts);
    ASSERT_TRUE(a.ok()) << sql << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << b.status().ToString();
    EXPECT_TRUE(MultisetEquals(*a, *b)) << sql;
  }
}

/// Invariant 4: the parser never crashes on mutated inputs — it returns
/// a Status for garbage.
TEST_P(PropertyTest, ParserRobustToMutation) {
  RandomQueryOptions qopts;
  qopts.seed = GetParam() + 555;
  RandomQueryGenerator gen(qopts);
  std::mt19937_64 rng(GetParam());
  const char junk[] = "()',.*;=<>:x0 ";
  for (int i = 0; i < 200; ++i) {
    std::string sql = gen.NextQuery();
    switch (rng() % 3) {
      case 0:  // truncate
        sql = sql.substr(0, rng() % (sql.size() + 1));
        break;
      case 1: {  // random substitution
        if (!sql.empty()) {
          sql[rng() % sql.size()] = junk[rng() % (sizeof(junk) - 1)];
        }
        break;
      }
      default: {  // random insertion
        sql.insert(sql.begin() + rng() % (sql.size() + 1),
                   junk[rng() % (sizeof(junk) - 1)]);
        break;
      }
    }
    // Must not crash; status may be anything.
    auto parsed = ParseQuery(sql);
    if (parsed.ok()) {
      Binder binder(&db_.catalog());
      (void)binder.Bind(**parsed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace uniqopt
