// Experiment X8 (§6.1, Example 10): join vs nested DL/I strategies in
// the IMS gateway.
//
// Series:
//  - Join_KeyQualified / Nested_KeyQualified: the paper's lines 21–29 vs
//    30–35; counters `parts_calls` reproduce the headline claim — the
//    nested program issues HALF the DL/I calls against PARTS (the join
//    program's second GNP always returns 'GE').
//  - Join_OemQualified / Nested_OemQualified: non-sequence-field
//    qualification; `visited` shows the nested program halting its twin
//    scan at the first match.
//
// Expected shape: parts_calls ratio ≈ 2.0 for key-qualified probes at
// every scale; wall-clock tracks segment visits.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ims/gateway.h"

namespace uniqopt {
namespace bench {
namespace {

const ims::ImsDatabase& GetIms(size_t suppliers, size_t parts) {
  using Key = std::pair<size_t, size_t>;
  static std::map<Key, std::unique_ptr<ims::ImsDatabase>>* cache =
      new std::map<Key, std::unique_ptr<ims::ImsDatabase>>();
  Key key{suppliers, parts};
  auto it = cache->find(key);
  if (it != cache->end()) return *it->second;
  auto built = ims::BuildSupplierIms(GetSupplierDb(suppliers, parts));
  UNIQOPT_DCHECK_MSG(built.ok(), built.status().ToString().c_str());
  const ims::ImsDatabase& ref = **built;
  cache->emplace(key, std::move(*built));
  return ref;
}

void Report(benchmark::State& state, const ims::GatewayResult& result) {
  state.counters["rows"] = static_cast<double>(result.rows.size());
  state.counters["parts_calls"] =
      static_cast<double>(result.stats.calls_by_segment.at("PARTS"));
  state.counters["total_calls"] =
      static_cast<double>(result.stats.TotalCalls());
  state.counters["visited"] =
      static_cast<double>(result.stats.segments_visited);
}

void BM_Join_KeyQualified(benchmark::State& state) {
  const auto& ims_db = GetIms(static_cast<size_t>(state.range(0)), 20);
  ims::GatewayResult result;
  for (auto _ : state) {
    result = ims::JoinStrategySuppliersForPart(ims_db, 11);
    benchmark::DoNotOptimize(result.rows.size());
  }
  Report(state, result);
}
BENCHMARK(BM_Join_KeyQualified)->Arg(100)->Arg(1000)->Arg(5000);

void BM_Nested_KeyQualified(benchmark::State& state) {
  const auto& ims_db = GetIms(static_cast<size_t>(state.range(0)), 20);
  ims::GatewayResult result;
  for (auto _ : state) {
    result = ims::NestedStrategySuppliersForPart(ims_db, 11);
    benchmark::DoNotOptimize(result.rows.size());
  }
  Report(state, result);
}
BENCHMARK(BM_Nested_KeyQualified)->Arg(100)->Arg(1000)->Arg(5000);

void BM_Join_OemQualified(benchmark::State& state) {
  size_t suppliers = static_cast<size_t>(state.range(0));
  const auto& ims_db = GetIms(suppliers, 20);
  // An OEM value sitting mid-chain under a mid-keyspace supplier.
  int64_t oem = static_cast<int64_t>((suppliers / 2) * 20 + 10);
  ims::GatewayResult result;
  for (auto _ : state) {
    result = ims::JoinStrategySuppliersForOem(ims_db, oem);
    benchmark::DoNotOptimize(result.rows.size());
  }
  Report(state, result);
}
BENCHMARK(BM_Join_OemQualified)->Arg(100)->Arg(1000)->Arg(5000);

void BM_Nested_OemQualified(benchmark::State& state) {
  size_t suppliers = static_cast<size_t>(state.range(0));
  const auto& ims_db = GetIms(suppliers, 20);
  int64_t oem = static_cast<int64_t>((suppliers / 2) * 20 + 10);
  ims::GatewayResult result;
  for (auto _ : state) {
    result = ims::NestedStrategySuppliersForOem(ims_db, oem);
    benchmark::DoNotOptimize(result.rows.size());
  }
  Report(state, result);
}
BENCHMARK(BM_Nested_OemQualified)->Arg(100)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace bench
}  // namespace uniqopt

UNIQOPT_BENCH_MAIN();
