#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/sentinel.h"

namespace uniqopt {
namespace obs {

namespace {

/// ASCII sparkline ramp, lowest to highest.
constexpr char kSparkRamp[] = " .:-=+*#%@";
constexpr size_t kSparkLevels = sizeof(kSparkRamp) - 2;  // highest index

std::string HexFingerprint(uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

/// The representative per-window value a sparkline plots, by kind.
double WindowPlotValue(SeriesKind kind, const WindowStats& w) {
  switch (kind) {
    case SeriesKind::kCounter:
      return w.rate;
    case SeriesKind::kGauge:
      return static_cast<double>(w.value);
    case SeriesKind::kRatio:
      return w.ratio;
    case SeriesKind::kHistogram:
    case SeriesKind::kClass:
      return static_cast<double>(w.p50);
  }
  return 0.0;
}

std::string FormatDouble(double v) {
  char buf[40];
  if (v == 0.0) return "0";
  if (std::fabs(v) >= 1000.0 || v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

const char* SeriesKindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter:
      return "counter";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kHistogram:
      return "histogram";
    case SeriesKind::kClass:
      return "class";
    case SeriesKind::kRatio:
      return "ratio";
  }
  return "unknown";
}

uint64_t SteadyWindowClock::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TimeSeriesPlane::Series::Push(WindowStats w, size_t cap) {
  if (slots.size() < cap) {
    slots.push_back(std::move(w));
  } else {
    slots[head] = std::move(w);
    head = (head + 1) % cap;
  }
}

std::vector<WindowStats> TimeSeriesPlane::Series::Ordered() const {
  std::vector<WindowStats> out;
  out.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    out.push_back(slots[(head + i) % slots.size()]);
  }
  return out;
}

TimeSeriesPlane::TimeSeriesPlane(size_t windows_per_series,
                                 WindowClock* clock,
                                 MetricsRegistry* registry)
    : windows_per_series_(windows_per_series == 0 ? 1 : windows_per_series),
      clock_(clock != nullptr ? clock : &default_clock_),
      registry_(registry != nullptr ? registry : &MetricsRegistry::Global()) {
}

TimeSeriesPlane::~TimeSeriesPlane() { StopTicker(); }

TimeSeriesPlane& TimeSeriesPlane::Global() {
  static TimeSeriesPlane* plane = new TimeSeriesPlane();
  return *plane;
}

void TimeSeriesPlane::AttachSentinel(Sentinel* sentinel) {
  sentinel_.store(sentinel, std::memory_order_release);
}

Sentinel* TimeSeriesPlane::sentinel() const {
  return sentinel_.load(std::memory_order_acquire);
}

TimeSeriesPlane::Series* TimeSeriesPlane::FindOrCreateSeriesLocked(
    const std::string& name, SeriesKind kind, uint64_t class_fp) {
  auto it = series_.find(name);
  if (it != series_.end()) return &it->second;
  if (series_.size() >= kMaxSeries) {
    static Counter& dropped =
        MetricsRegistry::Global().GetCounter("timeseries.dropped");
    dropped.Increment();
    return nullptr;
  }
  Series& s = series_[name];
  s.kind = kind;
  s.class_fingerprint = class_fp;
  return &s;
}

void TimeSeriesPlane::RecordClassSample(uint64_t class_fingerprint,
                                        const char* metric, uint64_t value,
                                        uint64_t record_id,
                                        uint64_t plan_hash) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(class_fingerprint, std::string(metric));
  auto it = class_acc_.find(key);
  if (it == class_acc_.end()) {
    // Bound the tracked class count by distinct fingerprints, not by
    // (class, metric) pairs, so one class can grow both its metrics.
    size_t distinct = 0;
    uint64_t last_fp = 0;
    bool first = true;
    bool seen = false;
    for (const auto& [k, acc] : class_acc_) {
      (void)acc;
      if (first || k.first != last_fp) ++distinct;
      first = false;
      last_fp = k.first;
      seen = seen || k.first == class_fingerprint;
    }
    if (!seen && distinct >= kMaxClasses) {
      static Counter& dropped =
          MetricsRegistry::Global().GetCounter("timeseries.dropped");
      dropped.Increment();
      return;
    }
    it = class_acc_.emplace(std::move(key), ClassAccumulator{}).first;
  }
  ClassAccumulator& acc = it->second;
  if (acc.buckets.empty()) acc.buckets.assign(Histogram::kNumBuckets, 0);
  if (acc.count == 0 || value < acc.min) acc.min = value;
  if (acc.count == 0 || value > acc.max) acc.max = value;
  ++acc.count;
  acc.sum += value;
  ++acc.buckets[Histogram::BucketIndex(value)];
  if (value >= acc.worst.value) {
    acc.worst.value = value;
    acc.worst.record_id = record_id;
    acc.worst.fingerprint = plan_hash;
  }
}

void TimeSeriesPlane::Tick() {
  static Counter& tick_counter =
      MetricsRegistry::Global().GetCounter("timeseries.ticks");
  tick_counter.Increment();

  std::vector<SeriesObservation> observations;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t now = clock_->NowNs();
    if (window_start_ns_ == 0) window_start_ns_ = now > 0 ? now - 1 : 0;
    if (now <= window_start_ns_) now = window_start_ns_ + 1;
    const uint64_t start = window_start_ns_;
    window_start_ns_ = now;
    const uint64_t window_index =
        ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
    const double window_secs =
        static_cast<double>(now - start) / 1e9;

    WindowStats base;
    base.window = window_index;
    base.start_ns = start;
    base.end_ns = now;

    auto emit = [&](Series* s, const std::string& name, WindowStats w) {
      if (s == nullptr) return;
      s->Push(w, windows_per_series_);
      // Only meaningful windows go to the sentinel: valid, and either
      // carrying samples (histogram/class), or a defined ratio, or a
      // counter/gauge value.
      bool observable = w.valid;
      if (s->kind == SeriesKind::kHistogram ||
          s->kind == SeriesKind::kClass) {
        observable = observable && w.count > 0;
      }
      if (observable) {
        SeriesObservation obs;
        obs.series = name;
        obs.kind = s->kind;
        obs.class_fingerprint = s->class_fingerprint;
        obs.stats = std::move(w);
        observations.push_back(std::move(obs));
      }
    };

    // Counters: per-window deltas and rates. A counter first seen this
    // tick only establishes its baseline (a cumulative-since-start value
    // is not a window delta).
    CounterSnapshot counters = registry_->Counters();
    std::map<std::string, uint64_t> deltas;
    for (const auto& [name, value] : counters) {
      auto prev = prev_counters_.find(name);
      if (prev == prev_counters_.end()) {
        prev_counters_[name] = value;
        continue;
      }
      uint64_t delta = value >= prev->second ? value - prev->second : 0;
      prev->second = value;
      deltas[name] = delta;
      WindowStats w = base;
      w.count = delta;
      w.value = delta;
      w.rate = static_cast<double>(delta) / window_secs;
      emit(FindOrCreateSeriesLocked(name, SeriesKind::kCounter, 0), name,
           std::move(w));
    }

    // Rewrite firing ratios, synthesized from the counter deltas: only
    // windows where the rule was actually considered produce a point.
    for (const auto& [name, fired] : deltas) {
      constexpr const char kFired[] = ".fired";
      if (name.size() <= sizeof(kFired) - 1 ||
          name.compare(name.size() - (sizeof(kFired) - 1),
                       sizeof(kFired) - 1, kFired) != 0) {
        continue;
      }
      std::string basename = name.substr(0, name.size() - (sizeof(kFired) - 1));
      auto considered = deltas.find(basename + ".considered");
      if (considered == deltas.end() || considered->second == 0) continue;
      std::string ratio_name = basename + ".firing_ratio";
      WindowStats w = base;
      w.count = considered->second;
      w.ratio = static_cast<double>(fired) /
                static_cast<double>(considered->second);
      emit(FindOrCreateSeriesLocked(ratio_name, SeriesKind::kRatio, 0),
           ratio_name, std::move(w));
    }

    // Gauges: last value wins.
    for (const auto& [name, value] : registry_->Gauges()) {
      WindowStats w = base;
      w.value = value;
      emit(FindOrCreateSeriesLocked(name, SeriesKind::kGauge, 0), name,
           std::move(w));
    }

    // Histograms: snapshot-diff the cumulative buckets into per-window
    // bucket counts, guarded by the generation counter so a Reset()
    // inside the window invalidates it instead of going negative.
    for (const std::string& name : registry_->HistogramNames()) {
      const Histogram* h = registry_->FindHistogram(name);
      if (h == nullptr) continue;
      uint64_t gen_before = h->generation();
      uint64_t count = h->count();
      uint64_t sum = h->sum();
      std::vector<std::pair<uint64_t, uint64_t>> cumulative =
          h->CumulativeBuckets();
      uint64_t gen_after = h->generation();
      std::map<uint64_t, uint64_t> bucket_counts;
      uint64_t running = 0;
      for (const auto& [bound, cum] : cumulative) {
        bucket_counts[bound] = cum - running;
        running = cum;
      }
      auto shadow_it = hist_shadows_.find(name);
      if (shadow_it == hist_shadows_.end()) {
        HistogramShadow shadow;
        shadow.generation = gen_after;
        shadow.count = count;
        shadow.sum = sum;
        shadow.bucket_counts = std::move(bucket_counts);
        hist_shadows_[name] = std::move(shadow);
        continue;  // baseline only
      }
      HistogramShadow& shadow = shadow_it->second;
      // A torn snapshot (reset in flight: odd generation, or the
      // generation moved mid-snapshot or since the last window) cannot
      // be diffed against the shadow.
      bool straddled = gen_before != gen_after || gen_before % 2 != 0 ||
                       gen_before != shadow.generation;
      WindowStats w = base;
      if (straddled) {
        w.valid = false;
      } else {
        uint64_t delta_count = 0;
        uint64_t rank_seen = 0;
        std::map<uint64_t, uint64_t> delta_buckets;
        for (const auto& [bound, n] : bucket_counts) {
          auto prev = shadow.bucket_counts.find(bound);
          uint64_t before = prev == shadow.bucket_counts.end()
                                ? 0
                                : prev->second;
          if (n > before) {
            delta_buckets[bound] = n - before;
            delta_count += n - before;
          }
        }
        w.count = delta_count;
        w.sum = sum >= shadow.sum ? sum - shadow.sum : 0;
        w.rate = static_cast<double>(delta_count) / window_secs;
        if (delta_count > 0) {
          uint64_t rank50 = (delta_count + 1) / 2;
          uint64_t rank99 = static_cast<uint64_t>(
              std::ceil(0.99 * static_cast<double>(delta_count)));
          if (rank99 < 1) rank99 = 1;
          bool have_min = false;
          for (const auto& [bound, n] : delta_buckets) {
            uint64_t mid =
                Histogram::BucketMidpoint(Histogram::BucketIndex(bound));
            if (!have_min) {
              w.min = mid;
              have_min = true;
            }
            w.max = mid;
            if (rank_seen < rank50 && rank_seen + n >= rank50) w.p50 = mid;
            if (rank_seen < rank99 && rank_seen + n >= rank99) w.p99 = mid;
            rank_seen += n;
          }
        }
      }
      shadow.generation = gen_after;
      shadow.count = count;
      shadow.sum = sum;
      shadow.bucket_counts = std::move(bucket_counts);
      emit(FindOrCreateSeriesLocked(name, SeriesKind::kHistogram, 0), name,
           std::move(w));
    }

    // Class series: fold and reset the open accumulators. Classes that
    // saw no samples still close an (empty) window so the timeline
    // shows the gap.
    for (auto& [key, acc] : class_acc_) {
      const auto& [fp, metric] = key;
      std::string name = "class." + HexFingerprint(fp) + "." + metric;
      WindowStats w = base;
      w.count = acc.count;
      w.sum = acc.sum;
      w.min = acc.min;
      w.max = acc.max;
      w.rate = static_cast<double>(acc.count) / window_secs;
      w.exemplar = acc.worst;
      if (acc.count > 0) {
        uint64_t rank50 = (acc.count + 1) / 2;
        uint64_t rank99 = static_cast<uint64_t>(
            std::ceil(0.99 * static_cast<double>(acc.count)));
        if (rank99 < 1) rank99 = 1;
        uint64_t seen = 0;
        for (size_t i = 0; i < acc.buckets.size(); ++i) {
          uint64_t n = acc.buckets[i];
          if (n == 0) continue;
          uint64_t mid = Histogram::BucketMidpoint(i);
          if (seen < rank50 && seen + n >= rank50) w.p50 = mid;
          if (seen < rank99 && seen + n >= rank99) w.p99 = mid;
          seen += n;
        }
        // Clamp midpoint estimates into the observed range.
        if (w.p50 < w.min) w.p50 = w.min;
        if (w.p50 > w.max) w.p50 = w.max;
        if (w.p99 < w.min) w.p99 = w.min;
        if (w.p99 > w.max) w.p99 = w.max;
      }
      acc.count = 0;
      acc.sum = 0;
      acc.min = 0;
      acc.max = 0;
      if (!acc.buckets.empty()) {
        std::fill(acc.buckets.begin(), acc.buckets.end(), 0u);
      }
      acc.worst = Exemplar{};
      emit(FindOrCreateSeriesLocked(name, SeriesKind::kClass, fp), name,
           std::move(w));
    }

    static Gauge& series_gauge =
        MetricsRegistry::Global().GetGauge("timeseries.series");
    series_gauge.Set(series_.size());
  }

  Sentinel* sentinel = sentinel_.load(std::memory_order_acquire);
  if (sentinel != nullptr && !observations.empty()) {
    sentinel->ObserveTick(observations);
  }
}

Status TimeSeriesPlane::StartTicker(uint64_t interval_ms) {
  if (interval_ms == 0) {
    return Status::InvalidArgument("ticker interval must be > 0 ms");
  }
  if (ticker_running_.exchange(true, std::memory_order_acq_rel)) {
    return Status::AlreadyExists("ticker already running");
  }
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    ticker_stop_ = false;
  }
  set_enabled(true);
  ticker_thread_ = std::thread([this, interval_ms] {
    TickerLoop(interval_ms);
  });
  return Status::OK();
}

void TimeSeriesPlane::TickerLoop(uint64_t interval_ms) {
  std::unique_lock<std::mutex> lock(ticker_mu_);
  while (!ticker_stop_) {
    if (ticker_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                            [this] { return ticker_stop_; })) {
      break;
    }
    lock.unlock();
    Tick();
    lock.lock();
  }
}

void TimeSeriesPlane::StopTicker() {
  if (!ticker_running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    ticker_stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_thread_.joinable()) ticker_thread_.join();
}

std::vector<SeriesSnapshot> TimeSeriesPlane::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesSnapshot> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    SeriesSnapshot snap;
    snap.name = name;
    snap.kind = s.kind;
    snap.class_fingerprint = s.class_fingerprint;
    snap.windows = s.Ordered();
    out.push_back(std::move(snap));
  }
  return out;
}

void TimeSeriesPlane::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  prev_counters_.clear();
  hist_shadows_.clear();
  class_acc_.clear();
  window_start_ns_ = 0;
}

std::string TimeSeriesPlane::ToText(const std::string& filter) const {
  std::vector<SeriesSnapshot> series = Snapshot();
  std::string out;
  if (filter.empty()) {
    if (series.empty()) {
      return "(no series yet — \\tick or \\serve closes windows)\n";
    }
    out += "timeline: " + std::to_string(series.size()) + " series, " +
           std::to_string(ticks()) + " tick(s), ring of " +
           std::to_string(windows_per_series_) + " windows\n";
    for (const SeriesSnapshot& s : series) {
      const WindowStats* last =
          s.windows.empty() ? nullptr : &s.windows.back();
      out += "  " + s.name + " (" + SeriesKindName(s.kind) + ", " +
             std::to_string(s.windows.size()) + " windows";
      if (last != nullptr) {
        out += ", last=" + FormatDouble(WindowPlotValue(s.kind, *last));
      }
      out += ")\n";
    }
    out += "(\\timeline <metric> for the sparkline + window table)\n";
    return out;
  }
  size_t matched = 0;
  for (const SeriesSnapshot& s : series) {
    if (s.name.find(filter) == std::string::npos) continue;
    ++matched;
    out += s.name + " (" + SeriesKindName(s.kind) + ", " +
           std::to_string(s.windows.size()) + " windows)\n";
    double max_value = 0.0;
    for (const WindowStats& w : s.windows) {
      if (w.valid) max_value = std::max(max_value, WindowPlotValue(s.kind, w));
    }
    std::string spark;
    for (const WindowStats& w : s.windows) {
      if (!w.valid) {
        spark += 'x';
        continue;
      }
      double v = WindowPlotValue(s.kind, w);
      size_t level =
          max_value <= 0.0
              ? 0
              : static_cast<size_t>(std::lround(
                    (v / max_value) * static_cast<double>(kSparkLevels)));
      if (level > kSparkLevels) level = kSparkLevels;
      spark += kSparkRamp[level];
    }
    out += "  [" + spark + "]  (x = window invalidated by a reset)\n";
    out += "  window        count        p50        p99        max"
           "       rate      ratio  exemplar\n";
    size_t start = s.windows.size() > 12 ? s.windows.size() - 12 : 0;
    for (size_t i = start; i < s.windows.size(); ++i) {
      const WindowStats& w = s.windows[i];
      char line[200];
      std::string exemplar;
      if (w.exemplar.record_id != 0) {
        exemplar = "#" + std::to_string(w.exemplar.record_id) + "/" +
                   HexFingerprint(w.exemplar.fingerprint).substr(8);
      }
      std::snprintf(line, sizeof(line),
                    "  %6llu %12llu %10llu %10llu %10llu %10.1f %10.3f  %s%s\n",
                    static_cast<unsigned long long>(w.window),
                    static_cast<unsigned long long>(w.count),
                    static_cast<unsigned long long>(w.p50),
                    static_cast<unsigned long long>(w.p99),
                    static_cast<unsigned long long>(w.max), w.rate, w.ratio,
                    exemplar.c_str(), w.valid ? "" : " (invalid)");
      out += line;
    }
  }
  if (matched == 0) out += "(no series matching \"" + filter + "\")\n";
  return out;
}

std::string TimeSeriesPlane::ToJson() const {
  std::vector<SeriesSnapshot> series = Snapshot();
  std::string out = "{\"timeseries\": {\n";
  out += "  \"ticks\": " + std::to_string(ticks()) + ",\n";
  out += "  \"windows_per_series\": " +
         std::to_string(windows_per_series_) + ",\n";
  out += "  \"series\": [";
  bool first = true;
  for (const SeriesSnapshot& s : series) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + JsonEscape(s.name) + "\", ";
    out += "\"kind\": \"" + std::string(SeriesKindName(s.kind)) + "\", ";
    if (s.kind == SeriesKind::kClass) {
      out += "\"class_fingerprint\": \"" +
             HexFingerprint(s.class_fingerprint) + "\", ";
    }
    out += "\"windows\": [";
    bool wfirst = true;
    for (const WindowStats& w : s.windows) {
      out += wfirst ? "" : ", ";
      wfirst = false;
      out += "{\"window\": " + std::to_string(w.window);
      out += ", \"start_ns\": " + std::to_string(w.start_ns);
      out += ", \"end_ns\": " + std::to_string(w.end_ns);
      out += ", \"valid\": " + std::string(w.valid ? "true" : "false");
      out += ", \"count\": " + std::to_string(w.count);
      out += ", \"value\": " + std::to_string(w.value);
      out += ", \"rate\": " + FormatDouble(w.rate);
      out += ", \"ratio\": " + FormatDouble(w.ratio);
      out += ", \"sum\": " + std::to_string(w.sum);
      out += ", \"min\": " + std::to_string(w.min);
      out += ", \"max\": " + std::to_string(w.max);
      out += ", \"p50\": " + std::to_string(w.p50);
      out += ", \"p99\": " + std::to_string(w.p99);
      if (w.exemplar.record_id != 0) {
        out += ", \"exemplar\": {\"record_id\": " +
               std::to_string(w.exemplar.record_id) +
               ", \"fingerprint\": \"" +
               HexFingerprint(w.exemplar.fingerprint) +
               "\", \"value\": " + std::to_string(w.exemplar.value) + "}";
      }
      out += "}";
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}}\n";
  return out;
}

}  // namespace obs
}  // namespace uniqopt
