// Experiment X11: ablation of the analyzer's ingredients over the
// corpus plus a generated workload. Each series disables one switch of
// Algorithm 1 / the FD detector and reports how many redundant
// DISTINCTs are still detected (counter `yes` out of `queries`).
//
// Ingredients:
//  - full:            everything on (extended line 10);
//  - verbatim_line10: the published algorithm (C = T ⇒ NO);
//  - no_type2:        transitive column-equality closure off;
//  - no_type1:        constant/host-variable binding off;
//  - no_unique:       UNIQUE candidate keys ignored (primary keys only);
//  - with_checks:     CHECK-constraint binding ON (off by default);
//  - fd_detector:     the FD-propagation detector for comparison.
//
// Expected shape: each ingredient contributes detections; Type 2 closure
// matters most on join queries, Type 1 on host-variable lookups.

#include <benchmark/benchmark.h>

#include "analysis/uniqueness.h"
#include "bench_util.h"
#include "workload/query_corpus.h"
#include "workload/random_query.h"

namespace uniqopt {
namespace bench {
namespace {

std::vector<PlanPtr> WorkloadPlans(const Database& db) {
  static std::map<const Database*, std::vector<PlanPtr>>* cache =
      new std::map<const Database*, std::vector<PlanPtr>>();
  auto it = cache->find(&db);
  if (it != cache->end()) return it->second;
  std::vector<PlanPtr> plans;
  for (const CorpusQuery& q : DistinctQueryCorpus()) {
    plans.push_back(MustBind(db, q.sql));
  }
  Binder binder(&db.catalog());
  RandomQueryGenerator gen(RandomQueryOptions{.seed = 31337});
  for (int i = 0; i < 150; ++i) {
    auto bound = binder.BindSql(gen.NextQuery());
    if (bound.ok()) plans.push_back(bound->plan);
  }
  cache->emplace(&db, plans);
  return plans;
}

void RunAblation(benchmark::State& state, const Algorithm1Options& opts) {
  const Database& db = GetSupplierDb(50, 10);
  std::vector<PlanPtr> plans = WorkloadPlans(db);
  size_t yes = 0;
  for (auto _ : state) {
    yes = 0;
    for (const PlanPtr& plan : plans) {
      auto verdict = AnalyzeDistinctAlgorithm1(plan, opts);
      if (verdict.ok() && verdict->distinct_unnecessary) ++yes;
    }
    benchmark::DoNotOptimize(yes);
  }
  state.counters["queries"] = static_cast<double>(plans.size());
  state.counters["yes"] = static_cast<double>(yes);
}

void BM_Full(benchmark::State& state) {
  RunAblation(state, Algorithm1Options{});
}
BENCHMARK(BM_Full);

void BM_VerbatimLine10(benchmark::State& state) {
  Algorithm1Options opts;
  opts.verbatim_line10 = true;
  RunAblation(state, opts);
}
BENCHMARK(BM_VerbatimLine10);

void BM_NoType2Closure(benchmark::State& state) {
  Algorithm1Options opts;
  opts.use_column_equivalence = false;
  RunAblation(state, opts);
}
BENCHMARK(BM_NoType2Closure);

void BM_NoType1Binding(benchmark::State& state) {
  Algorithm1Options opts;
  opts.bind_constants = false;
  RunAblation(state, opts);
}
BENCHMARK(BM_NoType1Binding);

void BM_NoUniqueKeys(benchmark::State& state) {
  Algorithm1Options opts;
  opts.use_unique_keys = false;
  RunAblation(state, opts);
}
BENCHMARK(BM_NoUniqueKeys);

void BM_WithCheckBinding(benchmark::State& state) {
  Algorithm1Options opts;
  opts.use_check_constraints = true;
  RunAblation(state, opts);
}
BENCHMARK(BM_WithCheckBinding);

void BM_FdDetector(benchmark::State& state) {
  const Database& db = GetSupplierDb(50, 10);
  std::vector<PlanPtr> plans = WorkloadPlans(db);
  size_t yes = 0;
  for (auto _ : state) {
    yes = 0;
    for (const PlanPtr& plan : plans) {
      if (AnalyzeDistinctFd(plan).distinct_unnecessary) ++yes;
    }
    benchmark::DoNotOptimize(yes);
  }
  state.counters["queries"] = static_cast<double>(plans.size());
  state.counters["yes"] = static_cast<double>(yes);
}
BENCHMARK(BM_FdDetector);

}  // namespace
}  // namespace bench
}  // namespace uniqopt

UNIQOPT_BENCH_MAIN();
