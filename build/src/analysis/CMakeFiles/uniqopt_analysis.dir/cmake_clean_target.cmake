file(REMOVE_RECURSE
  "libuniqopt_analysis.a"
)
