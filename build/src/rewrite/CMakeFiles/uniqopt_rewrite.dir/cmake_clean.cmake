file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_rewrite.dir/rewriter.cc.o"
  "CMakeFiles/uniqopt_rewrite.dir/rewriter.cc.o.d"
  "libuniqopt_rewrite.a"
  "libuniqopt_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
