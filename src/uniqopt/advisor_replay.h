#ifndef UNIQOPT_UNIQOPT_ADVISOR_REPLAY_H_
#define UNIQOPT_UNIQOPT_ADVISOR_REPLAY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/advisor.h"
#include "rewrite/rewriter.h"
#include "storage/table.h"

namespace uniqopt {

/// What-if outcome for one advisor suggestion: the recorded sample
/// queries re-prepared against a hypothetical catalog carrying the
/// suggested constraint.
struct AdvisorReplayOutcome {
  obs::AdvisorSuggestion suggestion;
  /// The hypothetical constraint as applied, e.g.
  /// "UNIQUE (SNO) on SUPPLIER".
  std::string description;
  /// False when the constraint could not be applied to the overlay (the
  /// error field then says why).
  bool applied = false;
  std::string error;
  size_t queries_replayed = 0;
  /// Queries where the hypothetical prepare fired a rewrite rule the
  /// baseline prepare did not.
  size_t rewrites_flipped = 0;
  /// Verifier violations across all hypothetical plans (expected 0:
  /// every what-if plan is auto-checked by the independent verifier).
  size_t verifier_violations = 0;
  /// One line per replayed query.
  std::vector<std::string> details;
};

struct AdvisorReplayResult {
  std::vector<AdvisorReplayOutcome> outcomes;

  std::string ToText() const;
};

/// Replays the top `max_suggestions` advisor suggestions: for each, a
/// shadow Database is built by cloning every TableDef of `db`'s catalog
/// (tables stay empty — replay only prepares) plus the suggested
/// constraint, and each recorded sample query is prepared against both
/// catalogs with plan verification forced on. Replay optimizers publish
/// nothing back to the advisor, and their plan-cache fingerprints carry
/// a private salt bit (the verify-salt mechanism), so hypothetical
/// prepares can never be served from — or leak into — real-catalog
/// cache entries.
Result<AdvisorReplayResult> ReplayAdvisorSuggestions(
    Database* db, const obs::AdvisorStore& store, size_t max_suggestions,
    const RewriteOptions& rewrite_options = {});

}  // namespace uniqopt

#endif  // UNIQOPT_UNIQOPT_ADVISOR_REPLAY_H_
