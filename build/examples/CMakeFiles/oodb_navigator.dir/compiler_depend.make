# Empty compiler generated dependencies file for oodb_navigator.
# This may be replaced when dependencies are built.
