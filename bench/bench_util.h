#ifndef UNIQOPT_BENCH_BENCH_UTIL_H_
#define UNIQOPT_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "exec/planner.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "plan/binder.h"
#include "rewrite/rewriter.h"
#include "storage/table.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace bench {

/// Returns a (cached) supplier database with `num_suppliers` suppliers ×
/// `parts_per_supplier` parts. Benchmarks share instances across
/// iterations; generation is deterministic.
inline const Database& GetSupplierDb(size_t num_suppliers,
                                     size_t parts_per_supplier,
                                     double null_fraction = 0.0) {
  using Key = std::tuple<size_t, size_t, int>;
  static std::map<Key, std::unique_ptr<Database>>* cache =
      new std::map<Key, std::unique_ptr<Database>>();
  Key key{num_suppliers, parts_per_supplier,
          static_cast<int>(null_fraction * 1000)};
  auto it = cache->find(key);
  if (it != cache->end()) return *it->second;

  auto db = std::make_unique<Database>();
  SupplierSchemaOptions schema;
  schema.max_sno = static_cast<int64_t>(num_suppliers) + 1;
  Status st = CreateSupplierSchema(db.get(), schema);
  UNIQOPT_DCHECK_MSG(st.ok(), st.ToString().c_str());
  SupplierDataOptions data;
  data.num_suppliers = num_suppliers;
  data.parts_per_supplier = parts_per_supplier;
  data.num_agents = num_suppliers / 2;
  data.null_fraction = null_fraction;
  st = PopulateSupplierDatabase(db.get(), data);
  UNIQOPT_DCHECK_MSG(st.ok(), st.ToString().c_str());
  const Database& ref = *db;
  cache->emplace(key, std::move(db));
  return ref;
}

/// Binds `sql` against `db`, aborting on failure (benchmark setup).
inline PlanPtr MustBind(const Database& db, const std::string& sql) {
  Binder binder(&db.catalog());
  auto bound = binder.BindSql(sql);
  UNIQOPT_DCHECK_MSG(bound.ok(), bound.status().ToString().c_str());
  return bound->plan;
}

/// Rewrites with the given options, aborting on failure.
inline PlanPtr MustRewrite(const PlanPtr& plan,
                           const RewriteOptions& options = {}) {
  auto r = RewritePlan(plan, options);
  UNIQOPT_DCHECK_MSG(r.ok(), r.status().ToString().c_str());
  return r->plan;
}

/// Executes, aborting on failure; returns row count and accumulates
/// stats.
inline size_t MustExecute(const PlanPtr& plan, const Database& db,
                          const PhysicalOptions& physical = {},
                          ExecStats* stats = nullptr) {
  ExecContext ctx;
  auto rows = ExecutePlan(plan, db, &ctx, physical);
  UNIQOPT_DCHECK_MSG(rows.ok(), rows.status().ToString().c_str());
  if (stats != nullptr) *stats = ctx.stats;
  return rows->size();
}

/// Benchmark driver: the standard google-benchmark main plus a
/// `--metrics-json=<path>` flag that, after the run, dumps the global
/// metrics registry — every counter/histogram the benchmarked code
/// moved (rewrite.rule.*, ims.dli.*, exec.*, ...) — in the stable
/// export schema of obs::ToMetricsJson. bench/baselines/*.json and
/// scripts/bench_compare.py consume exactly this schema, and the
/// Prometheus exporter renders from the same MetricSample snapshot, so
/// the gate and the exporters cannot drift apart.
inline int BenchMain(int argc, char** argv) {
  std::string metrics_path;
  std::vector<char*> args;
  constexpr std::string_view kMetricsFlag = "--metrics-json=";
  for (int i = 0; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind(kMetricsFlag, 0) == 0) {
      metrics_path = std::string(arg.substr(kMetricsFlag.size()));
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&bench_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
    out << obs::ToMetricsJson(
        obs::SnapshotMetrics(obs::MetricsRegistry::Global()));
  }
  return 0;
}

}  // namespace bench
}  // namespace uniqopt

#define UNIQOPT_BENCH_MAIN()                            \
  int main(int argc, char** argv) {                     \
    return ::uniqopt::bench::BenchMain(argc, argv);     \
  }                                                     \
  int main(int, char**)

#endif  // UNIQOPT_BENCH_BENCH_UTIL_H_
