# Empty dependencies file for bench_distinct_removal.
# This may be replaced when dependencies are built.
