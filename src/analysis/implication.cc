#include "analysis/implication.h"

#include <algorithm>

#include "expr/equality.h"
#include "expr/normalize.h"

namespace uniqopt {

namespace {

/// Tightens `domain` with `col op constant`.
void Constrain(ValueDomain* domain, CompareOp op, const Value& constant) {
  auto tighten_min = [&](const Value& v, bool inclusive) {
    if (!domain->min.has_value() || v.Compare(*domain->min) > 0 ||
        (v.Compare(*domain->min) == 0 && !inclusive)) {
      domain->min = v;
      domain->min_inclusive = inclusive;
    }
  };
  auto tighten_max = [&](const Value& v, bool inclusive) {
    if (!domain->max.has_value() || v.Compare(*domain->max) < 0 ||
        (v.Compare(*domain->max) == 0 && !inclusive)) {
      domain->max = v;
      domain->max_inclusive = inclusive;
    }
  };
  switch (op) {
    case CompareOp::kEq:
      tighten_min(constant, true);
      tighten_max(constant, true);
      break;
    case CompareOp::kGe:
      tighten_min(constant, true);
      break;
    case CompareOp::kGt:
      tighten_min(constant, false);
      break;
    case CompareOp::kLe:
      tighten_max(constant, true);
      break;
    case CompareOp::kLt:
      tighten_max(constant, false);
      break;
    case CompareOp::kNe:
      break;  // not representable in an interval; ignore (sound)
  }
}

/// Is `v` inside the interval part of `domain`?
bool InsideInterval(const ValueDomain& domain, const Value& v) {
  if (domain.min.has_value()) {
    int c = v.Compare(*domain.min);
    if (c < 0 || (c == 0 && !domain.min_inclusive)) return false;
  }
  if (domain.max.has_value()) {
    int c = v.Compare(*domain.max);
    if (c > 0 || (c == 0 && !domain.max_inclusive)) return false;
  }
  return true;
}

bool EvalAtom(const Value& x, CompareOp op, const Value& constant) {
  int c = x.Compare(constant);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

ColumnDomains ColumnDomains::FromTable(const TableDef& table) {
  ColumnDomains out;
  // First pass: interval constraints from every CHECK conjunct.
  for (const CheckConstraint& check : table.checks()) {
    for (const ExprPtr& conj : FlattenAnd(check.predicate)) {
      size_t col = 0;
      CompareOp op = CompareOp::kEq;
      Value constant;
      if (MatchColumnConstant(conj, &col, &op, &constant)) {
        Constrain(&out.domains_[col], op, constant);
        continue;
      }
      std::vector<Value> values;
      if (MatchColumnInList(conj, &col, &values)) {
        ValueDomain& d = out.domains_[col];
        if (d.values.has_value()) {
          // Intersect with the existing finite set.
          std::vector<Value> kept;
          for (const Value& v : *d.values) {
            for (const Value& w : values) {
              if (v.Compare(w) == 0) {
                kept.push_back(v);
                break;
              }
            }
          }
          d.values = std::move(kept);
        } else {
          d.values = std::move(values);
        }
      }
    }
  }
  // Second pass: drop finite values outside the interval.
  for (auto& [col, d] : out.domains_) {
    if (!d.values.has_value()) continue;
    std::vector<Value> kept;
    for (const Value& v : *d.values) {
      if (InsideInterval(d, v)) kept.push_back(v);
    }
    d.values = std::move(kept);
  }
  return out;
}

const ValueDomain& ColumnDomains::domain(size_t ordinal) const {
  static const ValueDomain* kUnconstrained = new ValueDomain();
  auto it = domains_.find(ordinal);
  return it == domains_.end() ? *kUnconstrained : it->second;
}

AtomVerdict TestAtomAgainstDomain(const ValueDomain& domain, CompareOp op,
                                  const Value& constant) {
  if (domain.Unconstrained()) return AtomVerdict::kUnknown;
  if (domain.values.has_value()) {
    // Finite domain: evaluate exhaustively.
    bool any_true = false;
    bool any_false = false;
    for (const Value& v : *domain.values) {
      (EvalAtom(v, op, constant) ? any_true : any_false) = true;
    }
    if (!any_false) {
      // Vacuously implied for an empty domain too (no non-NULL value
      // can exist, so any non-NULL row is impossible anyway).
      return domain.values->empty() ? AtomVerdict::kContradicted
                                    : AtomVerdict::kImpliedForNonNull;
    }
    if (!any_true) return AtomVerdict::kContradicted;
    return AtomVerdict::kUnknown;
  }
  // Interval domain. Decide per operator by comparing bounds.
  const std::optional<Value>& lo = domain.min;
  const std::optional<Value>& hi = domain.max;
  auto lo_cmp = [&] { return lo->Compare(constant); };
  auto hi_cmp = [&] { return hi->Compare(constant); };
  switch (op) {
    case CompareOp::kGe:
      if (lo.has_value() && lo_cmp() >= 0) {
        return AtomVerdict::kImpliedForNonNull;
      }
      if (hi.has_value() &&
          (hi_cmp() < 0 || (hi_cmp() == 0 && !domain.max_inclusive))) {
        return AtomVerdict::kContradicted;
      }
      return AtomVerdict::kUnknown;
    case CompareOp::kGt:
      if (lo.has_value() &&
          (lo_cmp() > 0 || (lo_cmp() == 0 && !domain.min_inclusive))) {
        return AtomVerdict::kImpliedForNonNull;
      }
      if (hi.has_value() && hi_cmp() <= 0) return AtomVerdict::kContradicted;
      return AtomVerdict::kUnknown;
    case CompareOp::kLe:
      if (hi.has_value() && hi_cmp() <= 0) {
        return AtomVerdict::kImpliedForNonNull;
      }
      if (lo.has_value() &&
          (lo_cmp() > 0 || (lo_cmp() == 0 && !domain.min_inclusive))) {
        return AtomVerdict::kContradicted;
      }
      return AtomVerdict::kUnknown;
    case CompareOp::kLt:
      if (hi.has_value() &&
          (hi_cmp() < 0 || (hi_cmp() == 0 && !domain.max_inclusive))) {
        return AtomVerdict::kImpliedForNonNull;
      }
      if (lo.has_value() && lo_cmp() >= 0) return AtomVerdict::kContradicted;
      return AtomVerdict::kUnknown;
    case CompareOp::kEq:
      // Implied only when the interval pins a single value.
      if (lo.has_value() && hi.has_value() && domain.min_inclusive &&
          domain.max_inclusive && lo->Compare(*hi) == 0 &&
          lo->Compare(constant) == 0) {
        return AtomVerdict::kImpliedForNonNull;
      }
      if (!InsideInterval(domain, constant)) {
        return AtomVerdict::kContradicted;
      }
      return AtomVerdict::kUnknown;
    case CompareOp::kNe:
      if (!InsideInterval(domain, constant)) {
        return AtomVerdict::kImpliedForNonNull;
      }
      if (lo.has_value() && hi.has_value() && domain.min_inclusive &&
          domain.max_inclusive && lo->Compare(*hi) == 0 &&
          lo->Compare(constant) == 0) {
        return AtomVerdict::kContradicted;
      }
      return AtomVerdict::kUnknown;
  }
  return AtomVerdict::kUnknown;
}

bool MatchColumnConstant(const ExprPtr& expr, size_t* column, CompareOp* op,
                         Value* constant) {
  if (expr->kind() != ExprKind::kComparison) return false;
  const ExprPtr& l = expr->child(0);
  const ExprPtr& r = expr->child(1);
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral &&
      !r->literal().is_null()) {
    *column = l->column_index();
    *op = expr->compare_op();
    *constant = r->literal();
    return true;
  }
  if (r->kind() == ExprKind::kColumnRef && l->kind() == ExprKind::kLiteral &&
      !l->literal().is_null()) {
    *column = r->column_index();
    *op = FlipCompareOp(expr->compare_op());
    *constant = l->literal();
    return true;
  }
  return false;
}

bool MatchColumnInList(const ExprPtr& expr, size_t* column,
                       std::vector<Value>* values) {
  if (expr->kind() != ExprKind::kOr) return false;
  std::optional<size_t> col;
  std::vector<Value> out;
  for (const ExprPtr& disjunct : expr->children()) {
    size_t c = 0;
    CompareOp op = CompareOp::kEq;
    Value v;
    if (!MatchColumnConstant(disjunct, &c, &op, &v) || op != CompareOp::kEq) {
      return false;
    }
    if (col.has_value() && *col != c) return false;
    col = c;
    out.push_back(std::move(v));
  }
  if (!col.has_value()) return false;
  *column = *col;
  *values = std::move(out);
  return true;
}

}  // namespace uniqopt
