file(REMOVE_RECURSE
  "libuniqopt_types.a"
)
