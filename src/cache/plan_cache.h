#ifndef UNIQOPT_CACHE_PLAN_CACHE_H_
#define UNIQOPT_CACHE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "cache/sharded_lru.h"

namespace uniqopt {

struct PreparedQuery;  // uniqopt/optimizer.h; stored type-erased here

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

namespace cache {

struct PlanCacheOptions {
  /// Master switch; a disabled cache turns Get/Put into no-ops so the
  /// optimizer needs no branching beyond one load.
  bool enabled = true;
  size_t shards = 8;
  size_t capacity = 1024;
  size_t byte_budget = 64ull << 20;
};

/// Fingerprint-keyed cache of immutable prepared queries. A hit returns
/// the `shared_ptr<const PreparedQuery>` stored by some earlier prepare
/// — plans, rewrite evidence and the verification report included — so
/// the caller skips parse, bind, Algorithm 1, rewriting *and*
/// verification. Keys are produced by cache::FingerprintSql with the
/// catalog version mixed in, so any DDL makes every older key
/// unreachable; Get additionally purges the superseded entries the
/// first time it observes a newer catalog version (lazy invalidation).
///
/// Event counts are mirrored into the global metrics registry
/// (cache.hits / cache.misses / cache.evictions / cache.invalidations
/// as counters, cache.bytes / cache.entries as gauges) so `\metrics`,
/// `/metrics` and bench --metrics-json all see the cache.
class PlanCache {
 public:
  using EntryPtr = std::shared_ptr<const PreparedQuery>;

  explicit PlanCache(PlanCacheOptions options = {});

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Cache lookup under the caller's current catalog version. Purges
  /// entries from older versions when the version moved since the last
  /// call (they can never be served again).
  EntryPtr Get(uint64_t fingerprint, uint64_t catalog_version);

  /// Stores a prepared query under its fingerprint. `bytes` is the
  /// caller's size estimate (budget accounting only).
  void Put(uint64_t fingerprint, uint64_t catalog_version, EntryPtr entry,
           size_t bytes);

  void Clear();

  LruStats Stats() const { return lru_.Stats(); }
  bool enabled() const { return options_.enabled; }
  const PlanCacheOptions& options() const { return options_; }

  /// `\cache` rendering: configuration plus live stats.
  std::string ToText() const;

 private:
  PlanCacheOptions options_;
  ShardedLru<PreparedQuery> lru_;
  std::atomic<uint64_t> observed_version_{0};
  // Interned registry handles — per-event cost is the metric's atomics.
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Counter* invalidations_;
  obs::Gauge* bytes_;
  obs::Gauge* entries_;
};

}  // namespace cache
}  // namespace uniqopt

#endif  // UNIQOPT_CACHE_PLAN_CACHE_H_
