// Differential oracle for the morsel-driven parallel + batch execution
// layer: every plan in the workload (corpus + generated queries) must
// produce the identical multiset of rows under
//   serial tuple-at-a-time  vs  batch dop=1  vs  dop=2  vs  dop=8,
// with the per-worker ExecStats merging to exact totals. Plus focused
// units for the morsel cursor, the mergeable aggregator, the shared
// hash-join build, EXPLAIN ANALYZE's Gather section, the plan-cache
// physical-options salt, and a TSan hammer mixing concurrent
// PrepareBatch with parallel executes.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "exec/operators.h"
#include "exec/parallel.h"
#include "rewrite/rewriter.h"
#include "test_util.h"
#include "uniqopt/optimizer.h"
#include "workload/query_corpus.h"
#include "workload/random_query.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

/// Generic bindings for a bound query's host variables: a fixed value
/// per type, so parameterized corpus queries execute without per-query
/// fixtures.
std::vector<Value> DefaultParams(const std::vector<HostVariable>& vars) {
  std::vector<Value> params;
  params.reserve(vars.size());
  for (const HostVariable& v : vars) {
    switch (v.type) {
      case TypeId::kInteger:
        params.push_back(Value::Integer(1));
        break;
      case TypeId::kString:
        params.push_back(Value::String("S1"));
        break;
      case TypeId::kDouble:
        params.push_back(Value::Double(1.0));
        break;
      default:
        params.push_back(Value::Null(v.type));
        break;
    }
  }
  return params;
}

Result<std::vector<Row>> ExecBound(const BoundQuery& bound,
                                   const Database& db,
                                   const PhysicalOptions& physical,
                                   ExecStats* stats = nullptr) {
  ExecContext ctx;
  ctx.params = DefaultParams(bound.host_vars);
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Row> rows,
                           ExecutePlan(bound.plan, db, &ctx, physical));
  if (stats != nullptr) *stats = ctx.stats;
  return rows;
}

class ParallelSweepTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_OK(CreateSupplierSchema(&db_));
    SupplierDataOptions data;
    data.num_suppliers = 30;
    data.parts_per_supplier = 5;
    data.num_agents = 15;
    data.null_fraction = 0.1;
    ASSERT_OK(PopulateSupplierDatabase(&db_, data));
  }

  std::vector<BoundQuery> Workload() {
    std::vector<BoundQuery> bound_queries;
    Binder binder(&db_.catalog());
    for (const CorpusQuery& q : DistinctQueryCorpus()) {
      auto bound = binder.BindSql(q.sql);
      EXPECT_TRUE(bound.ok()) << q.id;
      if (bound.ok()) bound_queries.push_back(std::move(*bound));
    }
    RandomQueryOptions qopts;
    qopts.seed = GetParam();
    qopts.always_distinct = false;
    qopts.group_by_probability = 0.2;
    RandomQueryGenerator gen(qopts);
    for (int i = 0; i < 80; ++i) {
      auto bound = binder.BindSql(gen.NextQuery());
      if (bound.ok()) bound_queries.push_back(std::move(*bound));
    }
    return bound_queries;
  }

  Database db_;
};

TEST_P(ParallelSweepTest, SerialBatchAndParallelAgree) {
  PhysicalOptions serial_tuple;
  serial_tuple.batch_size = 0;
  serial_tuple.dop = 1;
  PhysicalOptions batch1;
  batch1.dop = 1;
  PhysicalOptions dop2;
  dop2.dop = 2;
  PhysicalOptions dop8;
  dop8.dop = 8;

  size_t plans = 0;
  for (const BoundQuery& bound : Workload()) {
    ASSERT_OK_AND_ASSIGN(std::vector<Row> reference,
                         ExecBound(bound, db_, serial_tuple));
    for (const PhysicalOptions& physical : {batch1, dop2, dop8}) {
      ExecStats stats;
      ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                           ExecBound(bound, db_, physical, &stats));
      EXPECT_TRUE(MultisetEquals(reference, rows))
          << "dop=" << physical.dop << " batch=" << physical.batch_size
          << "\n"
          << bound.plan->ToString() << "serial rows:\n"
          << RowsToString(reference) << "variant rows:\n"
          << RowsToString(rows);
      EXPECT_EQ(stats.rows_output, rows.size()) << bound.plan->ToString();
    }
    ++plans;
  }
  // Three seed instantiations of >= 70 plans each give the >= 200-plan
  // differential floor.
  EXPECT_GE(plans, 70u);
}

TEST_P(ParallelSweepTest, RewrittenPlansAgreeUnderParallelExecution) {
  PhysicalOptions serial_tuple;
  serial_tuple.batch_size = 0;
  PhysicalOptions dop8;
  dop8.dop = 8;
  for (const BoundQuery& bound : Workload()) {
    ASSERT_OK_AND_ASSIGN(RewriteResult rewritten, RewritePlan(bound.plan));
    ASSERT_OK_AND_ASSIGN(std::vector<Row> reference,
                         ExecBound(bound, db_, serial_tuple));
    BoundQuery rebound = bound;
    rebound.plan = rewritten.plan;
    ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                         ExecBound(rebound, db_, dop8));
    EXPECT_TRUE(MultisetEquals(reference, rows))
        << bound.plan->ToString() << "rewritten:\n"
        << rewritten.plan->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSweepTest,
                         ::testing::Values(11u, 22u, 33u));

TEST(MorselCursorTest, CoversEveryRowExactlyOnce) {
  MorselCursor cursor(10000, 256);
  std::vector<int> claimed(10000, 0);
  std::atomic<size_t> morsels{0};
  auto worker = [&] {
    size_t begin = 0;
    size_t end = 0;
    while (cursor.Claim(&begin, &end)) {
      morsels.fetch_add(1, std::memory_order_relaxed);
      for (size_t i = begin; i < end; ++i) ++claimed[i];
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < 7; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  for (size_t i = 0; i < claimed.size(); ++i) {
    ASSERT_EQ(claimed[i], 1) << "row " << i;
  }
  EXPECT_EQ(morsels.load(), (10000 + 255) / 256);
  size_t begin = 0;
  size_t end = 0;
  EXPECT_FALSE(cursor.Claim(&begin, &end));
}

TEST(GroupedAggregatorTest, PartitionedMergeMatchesSingleAccumulator) {
  Schema schema({Column{"", "G", TypeId::kInteger, /*nullable=*/true},
                 Column{"", "V", TypeId::kInteger, /*nullable=*/true}});
  std::vector<AggregateItem> aggs = {
      {AggFunc::kCountStar, 0, "COUNT(*)"},
      {AggFunc::kCount, 1, "COUNT(V)"},
      {AggFunc::kSum, 1, "SUM(V)"},
      {AggFunc::kAvg, 1, "AVG(V)"},
      {AggFunc::kMin, 1, "MIN(V)"},
      {AggFunc::kMax, 1, "MAX(V)"},
  };
  // NULL group keys and NULL values exercise the `=!` grouping and the
  // NULL-skipping aggregate semantics across the merge.
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    Value g = i % 7 == 0 ? Value::Null(TypeId::kInteger)
                         : Value::Integer(i % 5);
    Value v = i % 11 == 0 ? Value::Null(TypeId::kInteger)
                          : Value::Integer(i - 100);
    rows.push_back(Row({g, v}));
  }

  ExecStats stats;
  GroupedAggregator whole(schema, {0}, aggs);
  for (const Row& r : rows) whole.Accumulate(r, &stats);

  GroupedAggregator merged(schema, {0}, aggs);
  for (size_t part = 0; part < 4; ++part) {
    GroupedAggregator partial(schema, {0}, aggs);
    for (size_t i = part; i < rows.size(); i += 4) {
      partial.Accumulate(rows[i], &stats);
    }
    merged.MergeFrom(partial);
  }

  EXPECT_TRUE(MultisetEquals(whole.Finalize(), merged.Finalize()));
}

TEST(GroupedAggregatorTest, ScalarAggregateOverEmptyMergeYieldsOneRow) {
  Schema schema({Column{"", "V", TypeId::kInteger, /*nullable=*/true}});
  std::vector<AggregateItem> aggs = {{AggFunc::kCountStar, 0, "COUNT(*)"},
                                     {AggFunc::kMax, 0, "MAX(V)"}};
  GroupedAggregator a(schema, {}, aggs);
  GroupedAggregator b(schema, {}, aggs);
  a.MergeFrom(b);
  std::vector<Row> out = a.Finalize();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0][0].NullSafeEquals(Value::Integer(0)));
  EXPECT_TRUE(out[0][1].is_null());
}

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK(MakeTestSupplierDatabase(&db_)); }

  Database db_;
};

TEST_F(ParallelExecTest, SharedBuildJoinMatchesSerialHashJoin) {
  Binder binder(&db_.catalog());
  ASSERT_OK_AND_ASSIGN(
      BoundQuery bound,
      binder.BindSql("SELECT S.SNO, S.SNAME, P.PNO FROM SUPPLIER S, "
                     "PARTS P WHERE S.SNO = P.SNO AND P.PNO > 2"));
  PhysicalOptions serial;
  serial.batch_size = 0;
  ExecStats serial_stats;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> reference,
                       ExecBound(bound, db_, serial, &serial_stats));
  PhysicalOptions dop4;
  dop4.dop = 4;
  ExecStats parallel_stats;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                       ExecBound(bound, db_, dop4, &parallel_stats));
  EXPECT_TRUE(MultisetEquals(reference, rows));
  // The shared build drains the build side exactly once: build-row and
  // probe totals merged across workers equal the serial run's.
  EXPECT_EQ(parallel_stats.hash_build_rows, serial_stats.hash_build_rows);
  EXPECT_EQ(parallel_stats.hash_probes, serial_stats.hash_probes);
  EXPECT_GT(parallel_stats.morsels_claimed, 0u);
}

TEST_F(ParallelExecTest, PaperExamplesDop8MergedStatsNonZero) {
  Optimizer optimizer(&db_);
  PhysicalOptions dop8;
  dop8.dop = 8;
  size_t executed = 0;
  size_t parallel_plans = 0;
  for (const CorpusQuery& q : DistinctQueryCorpus()) {
    auto prepared = optimizer.Prepare(q.sql);
    ASSERT_TRUE(prepared.ok()) << q.id;
    if (prepared->verified) {
      EXPECT_TRUE(prepared->verification.violations.empty()) << q.id;
    }
    std::vector<std::pair<std::string, Value>> params;
    for (const HostVariable& v : prepared->host_vars) {
      params.emplace_back(v.name, v.type == TypeId::kString
                                      ? Value::String("S1")
                                      : Value::Integer(1));
    }
    ExecStats stats;
    auto rows = optimizer.Execute(*prepared, params, dop8, &stats);
    ASSERT_TRUE(rows.ok()) << q.id << ": " << rows.status().ToString();
    EXPECT_GT(stats.rows_scanned, 0u) << q.id;
    if (stats.morsels_claimed > 0) ++parallel_plans;
    ++executed;
  }
  EXPECT_GE(executed, 11u);
  // At least some corpus shapes must actually engage the morsel path
  // (the rest legitimately fall back to serial).
  EXPECT_GT(parallel_plans, 0u);
}

TEST_F(ParallelExecTest, ExplainAnalyzeRendersGatherSection) {
  Optimizer optimizer(&db_);
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery prepared,
      optimizer.Prepare("SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
                        "WHERE S.SNO = P.SNO"));
  PhysicalOptions dop8;
  dop8.dop = 8;
  ASSERT_OK_AND_ASSIGN(std::string report,
                       optimizer.ExplainAnalyze(prepared, {}, dop8));
  EXPECT_NE(report.find("Gather  dop=8"), std::string::npos) << report;
  EXPECT_NE(report.find("worker 0:"), std::string::npos) << report;
  EXPECT_NE(report.find("morsels="), std::string::npos) << report;
  EXPECT_NE(report.find("exec.morsels"), std::string::npos) << report;
}

TEST_F(ParallelExecTest, CacheSaltSeparatesPhysicalDefaults) {
  Optimizer optimizer(&db_);
  const std::string sql =
      "SELECT SNO FROM SUPPLIER WHERE SCITY = 'Toronto'";
  bool hit = false;
  ASSERT_OK(optimizer.PrepareShared(sql, &hit).status());
  ASSERT_OK(optimizer.PrepareShared(sql, &hit).status());
  EXPECT_TRUE(hit);

  PhysicalOptions dop8;
  dop8.dop = 8;
  optimizer.set_default_physical(dop8);
  ASSERT_OK(optimizer.PrepareShared(sql, &hit).status());
  EXPECT_FALSE(hit) << "dop change must not be served from dop=1 entries";
  ASSERT_OK(optimizer.PrepareShared(sql, &hit).status());
  EXPECT_TRUE(hit);

  PhysicalOptions tuple = dop8;
  tuple.batch_size = 0;
  optimizer.set_default_physical(tuple);
  ASSERT_OK(optimizer.PrepareShared(sql, &hit).status());
  EXPECT_FALSE(hit) << "batch-size change must re-key the entry";
}

TEST_F(ParallelExecTest, SerialFallbackForUnsupportedShapes) {
  Binder binder(&db_.catalog());
  // INTERSECT has no driving scan (two inputs, breaker at the root):
  // dop > 1 must fall back to the serial executor, not fail.
  ASSERT_OK_AND_ASSIGN(
      BoundQuery bound,
      binder.BindSql("SELECT SNO FROM SUPPLIER INTERSECT "
                     "SELECT SNO FROM AGENTS"));
  PhysicalOptions serial;
  serial.batch_size = 0;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> reference,
                       ExecBound(bound, db_, serial));
  PhysicalOptions dop8;
  dop8.dop = 8;
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                       ExecBound(bound, db_, dop8, &stats));
  EXPECT_TRUE(MultisetEquals(reference, rows));
  EXPECT_EQ(stats.morsels_claimed, 0u);
}

// TSan hammer: concurrent PrepareBatch (cost model on, so the shared
// CostEstimator's NDV cache is hit from many threads) interleaved with
// parallel executes on a second optimizer.
TEST_F(ParallelExecTest, ConcurrentPrepareAndParallelExecuteHammer) {
  Optimizer costed(&db_, RewriteOptions{}, /*use_cost_model=*/true);
  costed.set_verify_plans(false);
  Optimizer plain(&db_);
  plain.set_verify_plans(false);
  std::vector<std::string> sqls;
  for (const CorpusQuery& q : DistinctQueryCorpus()) sqls.push_back(q.sql);

  std::atomic<bool> failed{false};
  auto prepare_worker = [&] {
    for (int round = 0; round < 3 && !failed.load(); ++round) {
      auto batch = costed.PrepareBatch(sqls, 4);
      if (!batch.ok()) failed.store(true);
    }
  };
  auto execute_worker = [&] {
    PhysicalOptions dop4;
    dop4.dop = 4;
    for (int round = 0; round < 6 && !failed.load(); ++round) {
      auto prepared = plain.Prepare(
          "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
          "WHERE S.SNO = P.SNO");
      if (!prepared.ok() ||
          !plain.Execute(*prepared, {}, dop4).ok()) {
        failed.store(true);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.emplace_back(prepare_worker);
  pool.emplace_back(prepare_worker);
  pool.emplace_back(execute_worker);
  execute_worker();
  for (std::thread& t : pool) t.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace uniqopt
