#include "common/logging.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace uniqopt {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

namespace {

LogLevel ParseThreshold() {
  const char* env = std::getenv("UNIQOPT_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return LogLevel::kWarning;
  if (env[0] >= '0' && env[0] <= '4' && env[1] == '\0') {
    return static_cast<LogLevel>(env[0] - '0');
  }
  std::string s(env);
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warning" || s == "warn") return LogLevel::kWarning;
  if (s == "error") return LogLevel::kError;
  if (s == "fatal") return LogLevel::kFatal;
  return LogLevel::kWarning;
}

}  // namespace

LogLevel LogThreshold() {
  static const LogLevel threshold = ParseThreshold();
  return threshold;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // Strip the path: "src/analysis/algorithm1.cc" → "algorithm1.cc".
  const char* base = std::strrchr(file_, '/');
  base = base != nullptr ? base + 1 : file_;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelName(level_), base, line_,
               stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace uniqopt
