# Empty dependencies file for uniqopt_catalog.
# This may be replaced when dependencies are built.
