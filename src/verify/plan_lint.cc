#include "verify/plan_lint.h"

#include <string>
#include <vector>

namespace uniqopt {
namespace verify {

namespace {

void AddViolation(VerifyReport* report, ViolationCode code, std::string message,
                  std::string context = {}) {
  Violation v;
  v.analyzer = Analyzer::kPlanLint;
  v.code = code;
  v.message = std::move(message);
  v.context = std::move(context);
  report->violations.push_back(std::move(v));
}

/// Every column index referenced by `expr` must be < `width` (the width
/// of the frame the expression is bound against).
void CheckColumnRefs(const ExprPtr& expr, size_t width, const char* where,
                     const PlanNode& node, VerifyReport* report) {
  std::vector<size_t> cols;
  expr->CollectColumns(&cols);
  for (size_t c : cols) {
    if (c >= width) {
      AddViolation(report, ViolationCode::kDanglingColumnRef,
                   std::string(where) + " references column " +
                       std::to_string(c) + " but the frame has only " +
                       std::to_string(width) + " column(s)",
                   node.ToString());
      return;  // one report per expression is enough
    }
  }
}

/// The recorded output schema of `node` must match `expected` in width
/// and column types. (Nullability is intentionally not compared: plan
/// construction may conservatively widen it without affecting
/// soundness.)
void CheckSchema(const PlanNode& node, const Schema& expected,
                 VerifyReport* report) {
  const Schema& actual = node.schema();
  if (actual.num_columns() != expected.num_columns()) {
    AddViolation(report, ViolationCode::kSchemaWidthMismatch,
                 "operator records " + std::to_string(actual.num_columns()) +
                     " output column(s) but its children imply " +
                     std::to_string(expected.num_columns()),
                 node.ToString());
    return;
  }
  for (size_t i = 0; i < actual.num_columns(); ++i) {
    if (actual.column(i).type != expected.column(i).type) {
      AddViolation(
          report, ViolationCode::kSchemaTypeMismatch,
          "output column " + std::to_string(i) + " recorded as " +
              TypeIdToString(actual.column(i).type) + " but children imply " +
              TypeIdToString(expected.column(i).type),
          node.ToString());
      return;
    }
  }
}

/// Recursive structural walk: per-operator column-ref binding and
/// schema-propagation checks.
void LintNode(const PlanPtr& node, VerifyReport* report) {
  ++report->nodes_checked;
  for (size_t i = 0; i < node->num_children(); ++i) {
    LintNode(node->child(i), report);
  }
  switch (node->kind()) {
    case PlanKind::kGet: {
      const GetNode& get = *As<GetNode>(node);
      CheckSchema(*node,
                  get.table().schema().WithQualifier(get.alias()), report);
      break;
    }
    case PlanKind::kSelect: {
      const SelectNode& sel = *As<SelectNode>(node);
      CheckColumnRefs(sel.predicate(), sel.input()->schema().num_columns(),
                      "selection predicate", *node, report);
      CheckSchema(*node, sel.input()->schema(), report);
      break;
    }
    case PlanKind::kProject: {
      const ProjectNode& proj = *As<ProjectNode>(node);
      const Schema& in = proj.input()->schema();
      bool in_range = true;
      for (size_t c : proj.columns()) {
        if (c >= in.num_columns()) {
          AddViolation(report, ViolationCode::kDanglingColumnRef,
                       "projection selects column " + std::to_string(c) +
                           " but its input has only " +
                           std::to_string(in.num_columns()) + " column(s)",
                       node->ToString());
          in_range = false;
          break;
        }
      }
      if (in_range) CheckSchema(*node, in.Project(proj.columns()), report);
      break;
    }
    case PlanKind::kProduct: {
      const ProductNode& prod = *As<ProductNode>(node);
      CheckSchema(*node,
                  Schema::Concat(prod.left()->schema(),
                                 prod.right()->schema()),
                  report);
      break;
    }
    case PlanKind::kExists: {
      const ExistsNode& ex = *As<ExistsNode>(node);
      size_t combined = ex.outer()->schema().num_columns() +
                        ex.sub()->schema().num_columns();
      CheckColumnRefs(ex.correlation(), combined, "correlation predicate",
                      *node, report);
      CheckSchema(*node, ex.outer()->schema(), report);
      break;
    }
    case PlanKind::kSetOp: {
      const SetOpNode& setop = *As<SetOpNode>(node);
      if (!setop.left()->schema().UnionCompatible(setop.right()->schema())) {
        AddViolation(report, ViolationCode::kSetOpIncompatibleOperands,
                     "set operation over operands that are not union "
                     "compatible",
                     node->ToString());
      }
      CheckSchema(*node, setop.left()->schema(), report);
      break;
    }
    case PlanKind::kAggregate: {
      const AggregateNode& agg = *As<AggregateNode>(node);
      const Schema& in = agg.input()->schema();
      Schema expected;
      bool in_range = true;
      for (size_t c : agg.group_columns()) {
        if (c >= in.num_columns()) {
          AddViolation(report, ViolationCode::kDanglingColumnRef,
                       "GROUP BY column " + std::to_string(c) +
                           " exceeds the input width " +
                           std::to_string(in.num_columns()),
                       node->ToString());
          in_range = false;
          break;
        }
        expected.AddColumn(in.column(c));
      }
      for (const AggregateItem& item : agg.aggregates()) {
        if (item.func != AggFunc::kCountStar &&
            item.arg_column >= in.num_columns()) {
          AddViolation(report, ViolationCode::kDanglingColumnRef,
                       "aggregate argument column " +
                           std::to_string(item.arg_column) +
                           " exceeds the input width " +
                           std::to_string(in.num_columns()),
                       node->ToString());
          in_range = false;
          break;
        }
        Column c;
        c.name = item.name;
        c.type = AggregateNode::ResultType(
            item.func, item.func == AggFunc::kCountStar
                           ? TypeId::kInteger
                           : in.column(item.arg_column).type);
        expected.AddColumn(c);
      }
      if (in_range) CheckSchema(*node, expected, report);
      break;
    }
  }
}

/// True when the operator at the top of `plan` structurally eliminates
/// duplicate rows on its own (π_Dist, ∩_Dist/−_Dist, GROUP BY).
bool TopEliminatesDuplicates(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kProject:
      return As<ProjectNode>(plan)->mode() == DuplicateMode::kDist;
    case PlanKind::kSetOp:
      return As<SetOpNode>(plan)->mode() == DuplicateMode::kDist;
    case PlanKind::kAggregate:
      return true;
    default:
      return false;
  }
}

bool RuleAffectsDuplicates(RewriteRuleId rule) {
  switch (rule) {
    case RewriteRuleId::kRemoveRedundantDistinct:
    case RewriteRuleId::kIntersectToExists:
    case RewriteRuleId::kExceptToNotExists:
    case RewriteRuleId::kEliminateGroupByOnKey:
      return true;
    default:
      return false;
  }
}

bool HasEvidenceBody(const RewriteEvidence& e) {
  return e.proof.recorded || !e.facts.empty();
}

/// The rules whose soundness rests on a Theorem 2 closure proof must
/// carry the recorded ProofTrace (the evidence the proof checker
/// re-derives); the others must at least state the derived facts.
void CheckRewriteEvidence(const std::vector<AppliedRewrite>& rewrites,
                          VerifyReport* report) {
  for (const AppliedRewrite& r : rewrites) {
    const char* rule = RewriteRuleIdToString(r.rule);
    if (!r.evidence.condition_proven) {
      AddViolation(report, ViolationCode::kRewriteWithoutProvenCondition,
                   std::string(rule) +
                       " fired without marking its precondition proven",
                   r.description);
      continue;
    }
    if (r.evidence.before == nullptr || r.evidence.after == nullptr) {
      AddViolation(report, ViolationCode::kRewriteMissingSubtrees,
                   std::string(rule) +
                       " fired without recording its before/after subtrees",
                   r.description);
      continue;
    }
    if (!HasEvidenceBody(r.evidence)) {
      AddViolation(report, ViolationCode::kRewriteMissingEvidence,
                   std::string(rule) +
                       " fired with neither a recorded proof nor derived "
                       "facts",
                   r.description);
    }
  }
}

}  // namespace

void LintPlan(const VerifyInput& input, VerifyReport* report) {
  if (input.optimized == nullptr) {
    AddViolation(report, ViolationCode::kMissingOptimizedPlan,
                 "verifier invoked without an optimized plan");
    return;
  }
  LintNode(input.optimized, report);

  if (input.rewrites != nullptr) {
    CheckRewriteEvidence(*input.rewrites, report);
  }

  // DISTINCT may disappear from the top of the plan only with a
  // duplicate-affecting rewrite carrying proof/fact evidence — a plan
  // that silently lost its duplicate elimination would return wrong
  // answers.
  if (input.original != nullptr && TopEliminatesDuplicates(input.original) &&
      !TopEliminatesDuplicates(input.optimized)) {
    bool justified = false;
    if (input.rewrites != nullptr) {
      for (const AppliedRewrite& r : *input.rewrites) {
        justified = justified || (RuleAffectsDuplicates(r.rule) &&
                                  r.evidence.condition_proven &&
                                  HasEvidenceBody(r.evidence));
      }
    }
    if (!justified) {
      AddViolation(report, ViolationCode::kDistinctDroppedWithoutProof,
                   "the original plan eliminates duplicates at the top but "
                   "the optimized plan does not, and no duplicate-affecting "
                   "rewrite with evidence was recorded",
                   input.optimized->ToString());
    }
  }
}

}  // namespace verify
}  // namespace uniqopt
