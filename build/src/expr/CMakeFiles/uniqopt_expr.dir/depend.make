# Empty dependencies file for uniqopt_expr.
# This may be replaced when dependencies are built.
