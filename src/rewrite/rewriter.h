#ifndef UNIQOPT_REWRITE_REWRITER_H_
#define UNIQOPT_REWRITE_REWRITER_H_

#include <string>
#include <vector>

#include "analysis/algorithm1.h"
#include "common/result.h"
#include "obs/advisor.h"
#include "plan/plan.h"

namespace uniqopt {

/// The semantic rewrites of §5–§6, each gated on a uniqueness condition
/// proved by the analysis layer.
enum class RewriteRuleId {
  /// §5.1 / Theorem 1: π_Dist → π_All when the uniqueness condition
  /// holds; also ∩_Dist → ∩_All / −_Dist → −_All when an operand is
  /// duplicate-free (the observation before Corollary 2).
  kRemoveRedundantDistinct,
  /// §5.2 / Theorem 2: positive EXISTS → plain join when at most one
  /// inner row can match each outer row.
  kSubqueryToJoin,
  /// §5.2 / Corollary 1: EXISTS → DISTINCT join when the outer block is
  /// duplicate-free (Example 8), or when the projection is already
  /// DISTINCT.
  kSubqueryToDistinctJoin,
  /// §5.3 / Theorem 3: ∩_Dist → EXISTS with null-safe correlation when
  /// one operand is duplicate-free.
  kIntersectToExists,
  /// §5.3 / Corollary 2: ∩_All → EXISTS under the same condition.
  kIntersectAllToExists,
  /// §5.3 (sketched; "space restrictions" in the paper): − [ALL] →
  /// NOT EXISTS when the left operand is duplicate-free.
  kExceptToNotExists,
  /// §6: join → subquery for navigational back ends; valid when the
  /// projection uses only one side's columns and either the projection
  /// is DISTINCT or the discarded side matches at most once.
  kJoinToSubquery,
  /// §7 future work, implemented here: King-style join elimination via
  /// inclusion dependencies. A table joined only through a declared
  /// NOT NULL foreign key onto one of its candidate keys, contributing
  /// no projection columns and no other predicates, matches exactly
  /// once per referencing row and can be dropped from the query graph.
  kJoinElimination,
  /// §7 future work ("transformations based on true-interpreted
  /// predicates"): a WHERE conjunct implied by the CHECK constraints of
  /// a NOT NULL column is removed.
  kRemoveImpliedPredicate,
  /// Same machinery, the other direction: a conjunct contradicted by
  /// the CHECK constraints proves the result empty; the selection
  /// collapses to FALSE and the executor skips the scan.
  kDetectEmptyResult,
  /// GROUP BY extension: when the group columns functionally determine
  /// a key of the input, every group holds exactly one row, so
  /// SUM/MIN/MAX aggregates equal their argument and the aggregation
  /// becomes a plain projection (no hash/sort work).
  kEliminateGroupByOnKey,
  /// §5.3's converse observation: "we now have a means of converting a
  /// nested query specification to a query expression involving
  /// intersection". An EXISTS whose correlation is exactly the
  /// null-safe column-wise equality becomes an INTERSECT when the outer
  /// block is duplicate-free — another strategy-space expansion.
  kExistsToIntersect,
};

const char* RewriteRuleIdToString(RewriteRuleId id);

struct RewriteOptions {
  Algorithm1Options analysis;
  bool remove_redundant_distinct = true;
  bool subquery_to_join = true;
  bool subquery_to_distinct_join = true;
  bool intersect_to_exists = true;
  bool intersect_all_to_exists = true;
  bool except_to_not_exists = true;
  /// Off by default: beneficial for navigational (IMS / OO) back ends,
  /// usually not for relational executors (§6, §7 discussion).
  bool join_to_subquery = false;
  /// §7 extension: prune provably redundant joins via inclusion
  /// dependencies (foreign keys).
  bool join_elimination = true;
  /// §7 extension: simplify WHERE conjuncts against CHECK constraints
  /// (drop implied conjuncts, detect empty results).
  bool semantic_predicates = true;
  /// GROUP BY extension: turn single-row-group aggregation into
  /// projection when the group columns cover a derived key.
  bool group_by_elimination = true;
  /// Off by default (it is the inverse of intersect_to_exists; enabling
  /// both would ping-pong): convert a null-safe-equality EXISTS into an
  /// INTERSECT for set-operation execution strategies.
  bool exists_to_intersect = false;
  /// Starburst-style baseline policy: convert every subquery to a join
  /// whenever semantically possible, even without a uniqueness proof
  /// (uses DISTINCT-join). Used by comparison benchmarks.
  bool starburst_always_join = false;
  /// Bound on rule applications at one node (cycle guard).
  int max_iterations_per_node = 8;
};

/// Soundness evidence attached to every applied rewrite: the node the
/// rule consumed and produced plus the proof (or derived facts) that
/// discharged the gating theorem's precondition. The post-optimization
/// verifier (src/verify/) re-checks this evidence with an independent
/// reference implementation; a rewrite without evidence is itself a
/// verifier violation.
struct RewriteEvidence {
  /// The full subtree the rule matched (pre-image), as an owned plan —
  /// never a rendering. The equivalence prover (src/equiv/) normalizes
  /// and matches this structure against `after`, so producers must hand
  /// over the complete matched node (e.g. the π(EXISTS) subtree for
  /// subquery→join, not just the inner ExistsNode).
  PlanPtr before;
  /// The full subtree the rule produced. For set-op→EXISTS rules this is
  /// the ExistsNode whose correlation the null-semantics audit inspects.
  PlanPtr after;
  /// Closure/key-coverage proof when the gating analysis recorded one
  /// (Algorithm 1 for DISTINCT removal, Theorem 2 for subquery→join).
  ProofTrace proof;
  /// Human-readable facts for gates without a structured proof, e.g.
  /// "left operand duplicate-free: derived key {0}".
  std::vector<std::string> facts;
  /// True when the rule's semantic precondition was positively proven
  /// (every fired rewrite must set this; the verifier enforces it).
  bool condition_proven = false;
};

struct AppliedRewrite {
  RewriteRuleId rule;
  std::string description;
  RewriteEvidence evidence;
};

struct RewriteResult {
  PlanPtr plan;
  std::vector<AppliedRewrite> applied;
  /// Near-misses harvested at rule-rejection sites: proofs that failed
  /// by exactly one missing key/FD/NOT NULL fact. Possibly duplicated
  /// across sites; the optimizer dedups before publishing to the
  /// advisor.
  std::vector<obs::NearMiss> near_misses;

  bool Applied(RewriteRuleId id) const {
    for (const AppliedRewrite& r : applied) {
      if (r.rule == id) return true;
    }
    return false;
  }
};

/// Applies the enabled rules bottom-up until fixpoint. Every rewrite is
/// semantics-preserving under the multiset (ALL) semantics of §2.2,
/// gated on the corresponding theorem's condition.
Result<RewriteResult> RewritePlan(const PlanPtr& plan,
                                  const RewriteOptions& options = {});

/// Builds the null-safe tuple-equivalence predicate of Theorem 3 over
/// Concat(left, right): for every column i,
///   (L.i IS NULL AND R.i IS NULL) OR L.i = R.i,
/// simplified to plain equality when both sides are NOT NULL (the
/// paper's footnote 1).
ExprPtr MakeNullSafeCorrelation(const Schema& left, const Schema& right);

}  // namespace uniqopt

#endif  // UNIQOPT_REWRITE_REWRITER_H_
