// Index-backed execution: unique-index point lookups and build-free
// unique-index joins must (a) be chosen exactly when a declared key is
// covered, (b) produce the same rows as the scan-based lowering, and
// (c) surface in EXPLAIN ANALYZE names, ExecStats::index_probes, and
// the plan-cache salt.

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/index_exec.h"
#include "txn/dml_executor.h"
#include "uniqopt/uniqopt.h"
#include "workload/supplier_schema.h"

#include "test_util.h"

namespace uniqopt {
namespace {

PhysicalOptions NoIndexes() {
  PhysicalOptions p;
  p.use_indexes = false;
  return p;
}

TEST(IndexExecTest, PointLookupProbesInsteadOfScanning) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  const std::string sql = "SELECT SNAME FROM SUPPLIER WHERE SNO = 7";
  ExecStats with_index;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> fast,
                       RunSql(db, sql, {}, {}, &with_index));
  ExecStats without_index;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> slow,
                       RunSql(db, sql, {}, NoIndexes(), &without_index));
  EXPECT_TRUE(MultisetEquals(fast, slow));
  EXPECT_EQ(with_index.index_probes, 1u);
  EXPECT_EQ(with_index.rows_scanned, 0u);
  EXPECT_EQ(without_index.index_probes, 0u);
  EXPECT_GT(without_index.rows_scanned, 0u);
}

TEST(IndexExecTest, LookupHonorsResidualConjuncts) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  // SNO = 7 covers the key; the SCITY conjunct stays residual and can
  // reject the single matched row.
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> match,
      RunSql(db,
             "SELECT SNO FROM SUPPLIER WHERE SNO = 7 AND SCITY <> 'xx'"));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> reject,
      RunSql(db,
             "SELECT SNO FROM SUPPLIER WHERE SNO = 7 AND SNAME = 'no'"));
  EXPECT_EQ(match.size(), 1u);
  EXPECT_TRUE(reject.empty());
}

TEST(IndexExecTest, CompositeKeyNeedsEveryColumn) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  // PARTS PK is (SNO, PNO): both present → probe; one missing → scan.
  ExecStats covered;
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> one,
      RunSql(db, "SELECT PNAME FROM PARTS WHERE PNO = 2 AND SNO = 3", {},
             {}, &covered));
  EXPECT_EQ(covered.index_probes, 1u);
  EXPECT_EQ(one.size(), 1u);
  ExecStats partial;
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> many,
      RunSql(db, "SELECT PNAME FROM PARTS WHERE SNO = 3", {}, {},
             &partial));
  EXPECT_EQ(partial.index_probes, 0u);
  EXPECT_GT(partial.rows_scanned, 0u);
  EXPECT_GT(many.size(), 1u);
}

TEST(IndexExecTest, HostVariableProbeResolvesPerExecution) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  const std::string sql = "SELECT SNAME FROM SUPPLIER WHERE SNO = :n";
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> a,
      RunSql(db, sql, {{"n", Value::Integer(5)}}, {}, &stats));
  EXPECT_EQ(stats.index_probes, 1u);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_OK_AND_ASSIGN(std::vector<Row> b,
                       RunSql(db, sql, {{"n", Value::Integer(6)}}));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_FALSE(a[0].NullSafeEquals(b[0]));
  // NULL probe: SQL `=` matches nothing (no probe is even issued).
  ExecStats null_stats;
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> none,
      RunSql(db, sql, {{"n", Value::Null(TypeId::kInteger)}}, {},
             &null_stats));
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(null_stats.index_probes, 0u);
}

TEST(IndexExecTest, DoubleProbeCoercesAgainstIntegerKey) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> whole,
      RunSql(db, "SELECT SNO FROM SUPPLIER WHERE SNO = :n",
             {{"n", Value::Double(7.0)}}));
  EXPECT_EQ(whole.size(), 1u);
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> frac,
      RunSql(db, "SELECT SNO FROM SUPPLIER WHERE SNO = :n",
             {{"n", Value::Double(7.5)}}));
  EXPECT_TRUE(frac.empty());
}

TEST(IndexExecTest, UniqueIndexJoinSkipsBuildPhase) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  const std::string sql =
      "SELECT P.PNAME, S.SNAME FROM PARTS P, SUPPLIER S "
      "WHERE P.SNO = S.SNO AND P.COLOR = 'RED'";
  ExecStats with_index;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> fast,
                       RunSql(db, sql, {}, {}, &with_index));
  ExecStats without_index;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> slow,
                       RunSql(db, sql, {}, NoIndexes(), &without_index));
  EXPECT_TRUE(MultisetEquals(fast, slow));
  EXPECT_FALSE(fast.empty());
  EXPECT_GT(with_index.index_probes, 0u);
  EXPECT_EQ(with_index.hash_build_rows, 0u);
  EXPECT_GT(without_index.hash_build_rows, 0u);
  EXPECT_EQ(without_index.index_probes, 0u);
}

TEST(IndexExecTest, JoinFallsBackWhenBuildKeysAreNotAKey) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  // Right side PARTS joined on SNO only — (SNO) is not a key of PARTS,
  // so the classic hash build must be kept (one supplier has many
  // parts; a unique probe would drop rows).
  const std::string sql =
      "SELECT S.SNAME, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO";
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                       RunSql(db, sql, {}, {}, &stats));
  EXPECT_EQ(stats.index_probes, 0u);
  EXPECT_GT(stats.hash_build_rows, 0u);
  ASSERT_OK_AND_ASSIGN(std::vector<Row> baseline,
                       RunSql(db, sql, {}, NoIndexes()));
  EXPECT_TRUE(MultisetEquals(rows, baseline));
}

TEST(IndexExecTest, JoinNullKeysNeverMatch) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE L (K INTEGER, V INTEGER NOT NULL, PRIMARY KEY (V))"));
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE R (K INTEGER NOT NULL, W INTEGER, PRIMARY KEY (K))"));
  txn::DmlExecutor executor(&db);
  ASSERT_OK(executor.ExecuteSql("INSERT INTO L VALUES (1, 1), (2, 2)")
                .status());
  ASSERT_OK(
      executor.ExecuteSql("INSERT INTO L (V) VALUES (3)").status());
  ASSERT_OK(executor.ExecuteSql("INSERT INTO R VALUES (1, 10), (2, 20)")
                .status());
  const std::string sql =
      "SELECT L.V, R.W FROM L, R WHERE L.K = R.K";
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                       RunSql(db, sql, {}, {}, &stats));
  EXPECT_EQ(rows.size(), 2u);  // the NULL-keyed L row joins nothing
  EXPECT_EQ(stats.index_probes, 2u);
  ASSERT_OK_AND_ASSIGN(std::vector<Row> baseline,
                       RunSql(db, sql, {}, NoIndexes()));
  EXPECT_TRUE(MultisetEquals(rows, baseline));
}

TEST(IndexExecTest, MatchersRequireExactKeyCover) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  ASSERT_OK_AND_ASSIGN(const Table* parts, db.GetTable("PARTS"));
  const TableDef& def = parts->def();
  // Join on (SNO, PNO) — exactly the PK → match, key order normalized.
  std::optional<IndexJoinMatch> hit =
      MatchUniqueIndexJoin(def, /*left_keys=*/{5, 3},
                           /*right_keys=*/{1, 0});  // PNO, SNO
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->left_keys, (std::vector<size_t>{3, 5}));  // SNO, PNO
  // Subset of the key → no match.
  EXPECT_FALSE(MatchUniqueIndexJoin(def, {3}, {0}).has_value());
  // Duplicate right column → no match (two constraints on one column).
  EXPECT_FALSE(MatchUniqueIndexJoin(def, {3, 5}, {0, 0}).has_value());
  // Superset of every key → no match.
  EXPECT_FALSE(
      MatchUniqueIndexJoin(def, {3, 5, 6}, {0, 1, 2}).has_value());
  // UNIQUE (OEM_PNO) is also probeable.
  EXPECT_TRUE(MatchUniqueIndexJoin(def, {2}, {3}).has_value());
}

TEST(IndexExecTest, ExplainAnalyzeNamesTheIndexOperators) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery point,
      optimizer.Prepare("SELECT SNAME FROM SUPPLIER WHERE SNO = 3"));
  ASSERT_OK_AND_ASSIGN(std::string lookup_report,
                       optimizer.ExplainAnalyze(point));
  EXPECT_NE(lookup_report.find("IndexLookup("), std::string::npos)
      << lookup_report;
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery join,
      optimizer.Prepare("SELECT P.PNAME, S.SNAME FROM PARTS P, SUPPLIER S "
                        "WHERE P.SNO = S.SNO"));
  ASSERT_OK_AND_ASSIGN(std::string join_report,
                       optimizer.ExplainAnalyze(join));
  EXPECT_NE(join_report.find("UniqueIndexJoin("), std::string::npos)
      << join_report;
}

TEST(IndexExecTest, CacheSaltSeparatesIndexModes) {
  PhysicalOptions on;
  PhysicalOptions off;
  off.use_indexes = false;
  EXPECT_NE(on.CacheSalt(), off.CacheSalt());
}

TEST(IndexExecTest, ParallelExecutionStaysCorrectWithIndexesEnabled) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  const std::string sql =
      "SELECT P.PNAME, S.SNAME FROM PARTS P, SUPPLIER S "
      "WHERE P.SNO = S.SNO";
  PhysicalOptions parallel;
  parallel.dop = 4;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> par, RunSql(db, sql, {}, parallel));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> serial, RunSql(db, sql));
  EXPECT_TRUE(MultisetEquals(par, serial));
}

}  // namespace
}  // namespace uniqopt
