#ifndef UNIQOPT_CACHE_FINGERPRINT_H_
#define UNIQOPT_CACHE_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace uniqopt {
namespace cache {

/// A SQL statement reduced to its canonical token stream. Two statements
/// that differ only in whitespace, identifier/keyword case, or `--`
/// comments canonicalize to the same `text`; statements that further
/// differ only in literal values share the same `shape`.
struct CanonicalSql {
  /// Canonical token stream with literals inline: identifiers upper-
  /// cased, single spaces, comments stripped, string literals quoted.
  std::string text;
  /// Same stream with every literal replaced by `?` — the statement's
  /// parameterized shape (host variables keep their names: they are
  /// already parameters and their names matter for binding).
  std::string shape;
  size_t num_literals = 0;
};

/// Tokenizes and canonicalizes `sql`. Fails exactly when the lexer
/// fails; a statement that cannot be canonicalized cannot be prepared
/// either, so callers skip the cache and let Prepare surface the error.
Result<CanonicalSql> CanonicalizeSql(std::string_view sql);

/// 64-bit FNV-1a over `s`, continuing from `seed` (chainable).
uint64_t Fnv1a(std::string_view s,
               uint64_t seed = UINT64_C(0xcbf29ce484222325));

/// Folds a 64-bit value (catalog version, option salt) into `seed` by
/// hashing its little-endian bytes with the same FNV-1a stream.
uint64_t Fnv1aMix(uint64_t seed, uint64_t value);

struct FingerprintOptions {
  /// When set, the fingerprint hashes the parameterized `shape` instead
  /// of the literal-inclusive `text`, so statements differing only in
  /// literals collide deliberately. Only sound for consumers whose
  /// cached artifact is literal-independent (the plan cache keys on
  /// `text` because prepared plans bake constants in; recorders and
  /// dedup views key on `shape`).
  bool parameterize_literals = false;
  /// Extra salt folded into the key (optimizer mode flags, so one
  /// cache never serves a plan prepared under different modes).
  uint64_t salt = 0;
};

/// The cache key: FNV-1a over the canonical statement combined with the
/// catalog version. Any DDL bumps the version, so every fingerprint
/// computed afterwards differs from every fingerprint computed before —
/// stale entries can never be served, even before they are purged.
uint64_t FingerprintSql(const CanonicalSql& canonical,
                        uint64_t catalog_version,
                        const FingerprintOptions& options = {});

}  // namespace cache
}  // namespace uniqopt

#endif  // UNIQOPT_CACHE_FINGERPRINT_H_
