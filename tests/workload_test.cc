#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/query_corpus.h"
#include "workload/random_query.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

TEST(SupplierSchemaTest, SchemaMatchesFigure1) {
  Database db;
  ASSERT_OK(CreateSupplierSchema(&db));
  ASSERT_OK_AND_ASSIGN(const TableDef* supplier,
                       db.catalog().GetTable("SUPPLIER"));
  EXPECT_EQ(supplier->schema().num_columns(), 5u);
  ASSERT_NE(supplier->primary_key(), nullptr);
  EXPECT_EQ(supplier->primary_key()->columns, (std::vector<size_t>{0}));
  EXPECT_EQ(supplier->checks().size(), 3u);

  ASSERT_OK_AND_ASSIGN(const TableDef* parts, db.catalog().GetTable("PARTS"));
  ASSERT_NE(parts->primary_key(), nullptr);
  EXPECT_EQ(parts->primary_key()->columns, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(parts->keys().size(), 2u);  // PK + UNIQUE(OEM_PNO)

  ASSERT_OK_AND_ASSIGN(const TableDef* agents,
                       db.catalog().GetTable("AGENTS"));
  ASSERT_NE(agents->primary_key(), nullptr);
}

TEST(SupplierSchemaTest, OptionsControlConstraints) {
  Database db;
  SupplierSchemaOptions opts;
  opts.with_check_constraints = false;
  opts.with_oem_unique = false;
  ASSERT_OK(CreateSupplierSchema(&db, opts));
  ASSERT_OK_AND_ASSIGN(const TableDef* parts, db.catalog().GetTable("PARTS"));
  EXPECT_EQ(parts->keys().size(), 1u);
  EXPECT_TRUE(parts->checks().empty());
}

TEST(SupplierSchemaTest, GeneratedDataSatisfiesConstraints) {
  // PopulateSupplierDatabase inserts through the constraint checker, so
  // success implies validity; verify counts and determinism.
  Database a;
  Database b;
  ASSERT_OK(MakeTestSupplierDatabase(&a));
  ASSERT_OK(MakeTestSupplierDatabase(&b));
  ASSERT_OK_AND_ASSIGN(const Table* sa, a.GetTable("SUPPLIER"));
  ASSERT_OK_AND_ASSIGN(const Table* sb, b.GetTable("SUPPLIER"));
  EXPECT_EQ(sa->size(), 100u);
  // Deterministic for a fixed seed.
  for (size_t i = 0; i < sa->size(); ++i) {
    EXPECT_TRUE(sa->rows()[i].NullSafeEquals(sb->rows()[i]));
  }
}

TEST(SupplierSchemaTest, ScalesBeyondPaperRange) {
  Database db;
  SupplierSchemaOptions schema;
  schema.max_sno = 100000;
  ASSERT_OK(CreateSupplierSchema(&db, schema));
  SupplierDataOptions data;
  data.num_suppliers = 2000;
  data.parts_per_supplier = 3;
  ASSERT_OK(PopulateSupplierDatabase(&db, data));
  ASSERT_OK_AND_ASSIGN(const Table* parts, db.GetTable("PARTS"));
  EXPECT_EQ(parts->size(), 6000u);
}

TEST(SupplierSchemaTest, NullFractionInjectsNulls) {
  Database db;
  ASSERT_OK(CreateSupplierSchema(&db));
  SupplierDataOptions data;
  data.null_fraction = 0.5;
  ASSERT_OK(PopulateSupplierDatabase(&db, data));
  ASSERT_OK_AND_ASSIGN(const Table* supplier, db.GetTable("SUPPLIER"));
  size_t nulls = 0;
  for (const Row& row : supplier->rows()) {
    if (row[1].is_null()) ++nulls;  // SNAME
  }
  EXPECT_GT(nulls, 10u);
}

TEST(QueryCorpusTest, AllQueriesParseAndBind) {
  Database db;
  ASSERT_OK(CreateSupplierSchema(&db));
  Binder binder(&db.catalog());
  for (const CorpusQuery& q : DistinctQueryCorpus()) {
    auto bound = binder.BindSql(q.sql);
    EXPECT_TRUE(bound.ok()) << q.id << ": " << bound.status().ToString();
  }
}

TEST(QueryCorpusTest, GroundTruthIsConsistent) {
  for (const CorpusQuery& q : DistinctQueryCorpus()) {
    // A detector can only detect truly redundant DISTINCTs.
    if (q.algorithm1_detects) {
      EXPECT_TRUE(q.distinct_redundant) << q.id;
    }
    if (q.fd_detects) {
      EXPECT_TRUE(q.distinct_redundant) << q.id;
    }
  }
}

TEST(RandomQueryTest, GeneratesParseableBindableQueries) {
  Database db;
  ASSERT_OK(CreateSupplierSchema(&db));
  Binder binder(&db.catalog());
  RandomQueryGenerator gen(RandomQueryOptions{.seed = 99});
  for (int i = 0; i < 300; ++i) {
    std::string sql = gen.NextQuery();
    auto bound = binder.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status().ToString();
  }
}

TEST(RandomQueryTest, DeterministicPerSeed) {
  RandomQueryGenerator a(RandomQueryOptions{.seed = 5});
  RandomQueryGenerator b(RandomQueryOptions{.seed = 5});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextQuery(), b.NextQuery());
  }
  RandomQueryGenerator c(RandomQueryOptions{.seed = 6});
  bool any_diff = false;
  RandomQueryGenerator a2(RandomQueryOptions{.seed = 5});
  for (int i = 0; i < 20; ++i) {
    any_diff = any_diff || (a2.NextQuery() != c.NextQuery());
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace uniqopt
