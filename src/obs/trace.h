#ifndef UNIQOPT_OBS_TRACE_H_
#define UNIQOPT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace uniqopt {
namespace obs {

/// One finished span. Nesting is recoverable two ways: `depth` for quick
/// indentation, `parent_id` for exact tree reconstruction.
struct TraceEvent {
  std::string name;
  uint64_t start_ns = 0;     // steady-clock, process-relative
  uint64_t duration_ns = 0;
  int depth = 0;             // 0 = root span on its thread
  uint64_t id = 0;           // unique per process
  uint64_t parent_id = 0;    // 0 = no parent
  uint64_t tid = 0;          // small sequential per-thread id (trace lanes)
  std::vector<std::pair<std::string, std::string>> attrs;

  std::string ToString() const;
};

/// Receives finished spans. Implementations must be thread-safe: spans
/// end on whatever thread created them.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnSpanEnd(TraceEvent event) = 0;
};

/// Buffers events in memory; the shell's `\trace` and tests drain it.
class CollectingSink : public TraceSink {
 public:
  void OnSpanEnd(TraceEvent event) override;

  /// Returns all buffered events and clears the buffer.
  std::vector<TraceEvent> TakeEvents();

  /// Copies the buffered events without draining them (exporters render
  /// repeatedly from a live buffer).
  std::vector<TraceEvent> Events() const;

  /// Renders buffered events as an indented tree without draining them.
  std::string ToText() const;

  /// Drops events beyond the newest `max_events` (the shell's \serve
  /// keeps a bounded buffer alive indefinitely).
  void TrimTo(size_t max_events);

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Dispatches spans to a sink when enabled. Disabled (the default) makes
/// Span construction a single relaxed atomic load and nothing else — no
/// clock reads, no allocation.
class Tracer {
 public:
  static Tracer& Global();

  /// Starts routing spans to `sink` (not owned; must outlive tracing).
  void Enable(TraceSink* sink);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  TraceSink* sink() const { return sink_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<TraceSink*> sink_{nullptr};
};

/// RAII scoped span:
///   obs::Span span("optimizer.phase.rewrite");
///   span.AddAttr("rules_fired", 2);
/// Records start on construction, emits a TraceEvent to the tracer's sink
/// on destruction. When tracing is disabled the constructor leaves the
/// span inert and every other method is a no-op.
class Span {
 public:
  explicit Span(const char* name) : Span(Tracer::Global(), name) {}
  Span(Tracer& tracer, const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void AddAttr(const std::string& key, const std::string& value);
  void AddAttr(const std::string& key, const char* value);
  void AddAttr(const std::string& key, uint64_t value);
  void AddAttr(const std::string& key, int value);
  void AddAttr(const std::string& key, bool value);

  bool active() const { return active_; }

 private:
  bool active_ = false;
  Tracer* tracer_ = nullptr;
  TraceEvent event_;
};

}  // namespace obs
}  // namespace uniqopt

#endif  // UNIQOPT_OBS_TRACE_H_
