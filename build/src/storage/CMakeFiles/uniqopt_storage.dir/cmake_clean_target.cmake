file(REMOVE_RECURSE
  "libuniqopt_storage.a"
)
