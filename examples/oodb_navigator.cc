// Object-database navigation (§6.2, Example 11): child→parent OIDs make
// the child-driven plan retrieve every parent just to test the range
// predicate; the join→subquery rewrite enables the parent-driven plan,
// which wins whenever the parent predicate is selective. This example
// sweeps the range selectivity and prints the crossover.
//
//   $ oodb_navigator [num_suppliers] [parts_per_supplier]

#include <cstdio>
#include <cstdlib>

#include "oodb/navigator.h"
#include "oodb/oo_translator.h"
#include "plan/binder.h"
#include "rewrite/rewriter.h"
#include "workload/supplier_schema.h"

namespace {

int Run(size_t num_suppliers, size_t parts_per_supplier) {
  using namespace uniqopt;

  Database db;
  SupplierSchemaOptions schema;
  schema.max_sno = static_cast<int64_t>(num_suppliers) + 1;
  if (!CreateSupplierSchema(&db, schema).ok()) return 1;
  SupplierDataOptions data;
  data.num_suppliers = num_suppliers;
  data.parts_per_supplier = parts_per_supplier;
  if (!PopulateSupplierDatabase(&db, data).ok()) return 1;

  auto store = oodb::BuildSupplierObjectStore(db);
  if (!store.ok()) {
    std::fprintf(stderr, "oodb load: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "object store loaded: %zu objects (Figure 3 model: child->parent "
      "OIDs)\n\n",
      (*store)->num_objects());
  // Compile both strategies from SQL: the join plan is child-driven;
  // the Theorem 2 rewrite's EXISTS plan is parent-driven.
  const char* sql =
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO BETWEEN :LO AND :HI AND S.SNO = P.SNO AND "
      "P.PNO = :PARTNO";
  std::printf("query:\n  %s\n\n", sql);
  Binder binder(&db.catalog());
  auto bound = binder.BindSql(sql);
  if (!bound.ok()) return 1;
  RewriteOptions nav_policy;
  nav_policy.join_to_subquery = true;
  nav_policy.subquery_to_join = false;
  nav_policy.subquery_to_distinct_join = false;
  nav_policy.join_elimination = false;
  auto rewritten = RewritePlan(bound->plan, nav_policy);
  if (!rewritten.ok()) return 1;
  auto child_prog = oodb::TranslateOoPlan(*(*store), bound->plan);
  auto parent_prog = oodb::TranslateOoPlan(*(*store), rewritten->plan);
  if (child_prog.ok() && parent_prog.ok()) {
    std::printf("join plan compiles to:    %s\n",
                child_prog->ToString().c_str());
    std::printf("rewritten plan compiles to: %s\n\n",
                parent_prog->ToString().c_str());
  }

  int64_t part_no = static_cast<int64_t>(parts_per_supplier / 2 + 1);
  std::printf("%-12s %6s | %-44s cost | %-44s cost | winner\n", "range",
              "rows", "child-driven (lines 36-42)",
              "parent-driven (lines 43-48)");
  for (double selectivity : {0.02, 0.05, 0.10, 0.25, 0.50, 1.00}) {
    int64_t hi = static_cast<int64_t>(num_suppliers * selectivity);
    if (hi < 1) hi = 1;
    auto child = oodb::ChildDrivenSuppliersForPart(**store, part_no, 1, hi);
    auto parent = oodb::ParentDrivenSuppliersForPart(**store, part_no, 1, hi);
    char range[32];
    std::snprintf(range, sizeof(range), "[1, %lld]",
                  static_cast<long long>(hi));
    double child_cost = child.stats.EstimatedIoCost();
    double parent_cost = parent.stats.EstimatedIoCost();
    std::printf("%-12s %6zu | %-44s %6.0f | %-44s %6.0f | %s\n", range,
                child.rows.size(), child.stats.ToString().c_str(),
                child_cost, parent.stats.ToString().c_str(), parent_cost,
                parent_cost < child_cost ? "parent-driven" : "child-driven");
  }
  std::printf(
      "\nreading: with a selective range the child-driven plan still "
      "dereferences\nevery matching part's parent; the parent-driven plan "
      "(the Theorem 2\nrewrite) touches only suppliers inside the "
      "range.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t suppliers = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  size_t parts = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;
  return Run(suppliers, parts);
}
