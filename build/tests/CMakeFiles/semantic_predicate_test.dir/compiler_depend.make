# Empty compiler generated dependencies file for semantic_predicate_test.
# This may be replaced when dependencies are built.
