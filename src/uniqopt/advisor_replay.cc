#include "uniqopt/advisor_replay.h"

#include <memory>
#include <set>

#include "common/string_util.h"
#include "uniqopt/optimizer.h"

namespace uniqopt {

namespace {

/// Fingerprint-salt bit reserved for what-if replay (bit 1 is the
/// verify flag; see Optimizer::PrepareShared).
constexpr uint64_t kReplaySaltBit = 2;

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

/// Clones every table definition of `db`'s catalog (registration order,
/// so foreign-key references resolve) into a fresh empty Database,
/// applying `suggestion`'s constraint to its table.
Result<std::unique_ptr<Database>> BuildShadowDatabase(
    const Database& db, const obs::AdvisorSuggestion& suggestion,
    std::string* description) {
  auto shadow = std::make_unique<Database>();
  bool target_seen = false;
  for (const std::string& name : db.catalog().TableNames()) {
    UNIQOPT_ASSIGN_OR_RETURN(const TableDef* def,
                             db.catalog().GetTable(name));
    TableDef clone = *def;
    if (EqualsIgnoreCase(clone.name(), suggestion.table)) {
      target_seen = true;
      switch (suggestion.kind) {
        case obs::MissingFactKind::kUniqueKey:
        case obs::MissingFactKind::kFunctionalDependency:
          // An FD has no SQL DDL; a candidate key over the determinant
          // is strictly stronger, hence a sound actualization.
          UNIQOPT_RETURN_NOT_OK(
              clone.AddUniqueKey(suggestion.replay_key_columns));
          *description = "UNIQUE (" +
                         JoinNames(suggestion.replay_key_columns) + ") on " +
                         clone.name();
          break;
        case obs::MissingFactKind::kNotNull: {
          std::vector<Column> columns = clone.schema().columns();
          for (const std::string& cname : suggestion.replay_key_columns) {
            UNIQOPT_ASSIGN_OR_RETURN(size_t ordinal,
                                     clone.ColumnOrdinal(cname));
            columns[ordinal].nullable = false;
          }
          clone.mutable_schema() = Schema(std::move(columns));
          *description = "NOT NULL (" +
                         JoinNames(suggestion.replay_key_columns) + ") on " +
                         clone.name();
          break;
        }
      }
    }
    UNIQOPT_RETURN_NOT_OK(shadow->CreateTable(std::move(clone)));
  }
  if (!target_seen) {
    return Status::InvalidArgument("suggested table " + suggestion.table +
                                   " no longer exists in the catalog");
  }
  return shadow;
}

std::set<std::string> AppliedRuleNames(const PreparedQuery& q) {
  std::set<std::string> names;
  for (const AppliedRewrite& r : q.rewrites) {
    names.insert(RewriteRuleIdToString(r.rule));
  }
  return names;
}

}  // namespace

std::string AdvisorReplayResult::ToText() const {
  if (outcomes.empty()) {
    return "advisor replay: no suggestions to replay\n";
  }
  std::string out;
  size_t rank = 0;
  for (const AdvisorReplayOutcome& o : outcomes) {
    out += "#" + std::to_string(++rank) + " " + o.suggestion.table + ": " +
           o.suggestion.fact + "\n";
    if (!o.applied) {
      out += "   not applied: " + o.error + "\n";
      continue;
    }
    out += "   hypothetical constraint: " + o.description + "\n";
    out += "   replayed " + std::to_string(o.queries_replayed) +
           " quer" + (o.queries_replayed == 1 ? "y" : "ies") + ", " +
           std::to_string(o.rewrites_flipped) + " rewrite(s) flipped, " +
           std::to_string(o.verifier_violations) +
           " verifier violation(s)\n";
    for (const std::string& line : o.details) {
      out += "   " + line + "\n";
    }
  }
  return out;
}

Result<AdvisorReplayResult> ReplayAdvisorSuggestions(
    Database* db, const obs::AdvisorStore& store, size_t max_suggestions,
    const RewriteOptions& rewrite_options) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  AdvisorReplayResult result;
  std::vector<obs::AdvisorSuggestion> suggestions = store.Suggestions();
  if (suggestions.size() > max_suggestions) {
    suggestions.resize(max_suggestions);
  }

  // The baseline optimizer prepares against the real catalog with the
  // same settings the hypothetical side uses: verification forced on,
  // advisor publication off (replay must not count itself), and the
  // replay salt bit set so neither side shares plan-cache entries with
  // ordinary prepares.
  Optimizer baseline(db, rewrite_options);
  baseline.set_verify_plans(true);
  baseline.set_advise(false);
  baseline.set_extra_fingerprint_salt(kReplaySaltBit);

  for (obs::AdvisorSuggestion& suggestion : suggestions) {
    AdvisorReplayOutcome outcome;
    outcome.suggestion = suggestion;
    auto shadow =
        BuildShadowDatabase(*db, suggestion, &outcome.description);
    if (!shadow.ok()) {
      outcome.error = shadow.status().ToString();
      result.outcomes.push_back(std::move(outcome));
      continue;
    }
    outcome.applied = true;
    Optimizer hypothetical(shadow->get(), rewrite_options);
    hypothetical.set_verify_plans(true);
    hypothetical.set_advise(false);
    hypothetical.set_extra_fingerprint_salt(kReplaySaltBit);

    for (const std::string& sql : suggestion.sample_queries) {
      Result<PreparedQuery> base = baseline.Prepare(sql);
      Result<PreparedQuery> hypo = hypothetical.Prepare(sql);
      ++outcome.queries_replayed;
      if (!hypo.ok()) {
        outcome.details.push_back("[error] " + sql + ": " +
                                  hypo.status().ToString());
        continue;
      }
      outcome.verifier_violations += hypo->verification.violations.size();
      std::set<std::string> base_rules =
          base.ok() ? AppliedRuleNames(*base) : std::set<std::string>();
      std::set<std::string> hypo_rules = AppliedRuleNames(*hypo);
      std::string gained;
      for (const std::string& rule : hypo_rules) {
        if (base_rules.count(rule) == 0) {
          gained += (gained.empty() ? "" : ", ") + rule;
        }
      }
      if (!gained.empty()) {
        ++outcome.rewrites_flipped;
        outcome.details.push_back("[flip +" + gained + "] " + sql);
      } else {
        outcome.details.push_back("[no change] " + sql);
      }
    }
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace uniqopt
