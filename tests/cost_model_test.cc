// Tests for the cost model and cost-based strategy choice — the piece
// the paper leaves to "the optimizer's cost model" (§5).

#include <gtest/gtest.h>

#include "exec/cost_model.h"
#include "test_util.h"
#include "uniqopt/uniqopt.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(CreateSupplierSchema(&db_));
    SupplierDataOptions data;
    data.num_suppliers = 200;
    data.parts_per_supplier = 10;
    ASSERT_OK(PopulateSupplierDatabase(&db_, data));
    estimator_ = std::make_unique<CostEstimator>(&db_);
  }

  PlanPtr Bind(const std::string& sql) {
    Binder binder(&db_.catalog());
    auto bound = binder.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return bound->plan;
  }

  Database db_;
  std::unique_ptr<CostEstimator> estimator_;
};

TEST_F(CostModelTest, BaseTableCardinalities) {
  EXPECT_DOUBLE_EQ(estimator_->EstimateRows(Bind("SELECT * FROM SUPPLIER")),
                   200.0);
  EXPECT_DOUBLE_EQ(estimator_->EstimateRows(Bind("SELECT * FROM PARTS")),
                   2000.0);
}

TEST_F(CostModelTest, DistinctCountsFromLiveData) {
  // SNO is the key: 200 distinct. PARTS.PNO has 10 distinct values.
  EXPECT_DOUBLE_EQ(estimator_->DistinctCount("SUPPLIER", 0), 200.0);
  EXPECT_DOUBLE_EQ(estimator_->DistinctCount("PARTS", 1), 10.0);
}

TEST_F(CostModelTest, KeyEqualitySelectsOneRow) {
  double rows = estimator_->EstimateRows(
      Bind("SELECT * FROM SUPPLIER WHERE SNO = 7"));
  EXPECT_NEAR(rows, 1.0, 0.01);
}

TEST_F(CostModelTest, JoinCardinalityTracksKeys) {
  // S ⋈ P on SNO: |P| rows expected (each part one supplier).
  double rows = estimator_->EstimateRows(
      Bind("SELECT * FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO"));
  EXPECT_NEAR(rows, 2000.0, 100.0);
}

TEST_F(CostModelTest, HashJoinCheaperThanNestedLoop) {
  PlanPtr plan =
      Bind("SELECT * FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO");
  PhysicalOptions hash;
  hash.join = PhysicalOptions::JoinStrategy::kHash;
  PhysicalOptions nl;
  nl.join = PhysicalOptions::JoinStrategy::kNestedLoop;
  EXPECT_LT(estimator_->Estimate(plan, hash).cost,
            estimator_->Estimate(plan, nl).cost);
}

TEST_F(CostModelTest, EmptySelectionIsFree) {
  PlanPtr plan = Bind("SELECT * FROM SUPPLIER WHERE SNO = 600");
  auto rewritten = RewritePlan(plan);
  ASSERT_TRUE(rewritten.ok());
  PlanEstimate e = estimator_->Estimate(rewritten->plan, {});
  EXPECT_LT(e.cost, 10.0);
}

TEST_F(CostModelTest, DistinctRemovalLowersCost) {
  PlanPtr with = Bind(
      "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO");
  auto rewritten = RewritePlan(with);
  ASSERT_TRUE(rewritten.ok());
  ASSERT_TRUE(rewritten->Applied(RewriteRuleId::kRemoveRedundantDistinct));
  PhysicalOptions sort;
  sort.distinct = PhysicalOptions::DistinctStrategy::kSort;
  EXPECT_LT(estimator_->Estimate(rewritten->plan, sort).cost,
            estimator_->Estimate(with, sort).cost);
}

TEST_F(CostModelTest, ChooserPrefersRewrittenExistsAtScale) {
  PlanPtr original = Bind(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = 3)");
  auto rewritten = RewritePlan(original);
  ASSERT_TRUE(rewritten.ok());
  std::vector<PlanAlternative> alts =
      StandardAlternatives(original, rewritten->plan);
  size_t best = ChooseBestAlternative(*estimator_, &alts);
  // The winner must not be a nested-loop plan.
  EXPECT_EQ(alts[best].label.find("nested-loop"), std::string::npos)
      << alts[best].label;
}

TEST_F(CostModelTest, OptimizerFacadeCostBased) {
  Optimizer optimizer(&db_, RewriteOptions{}, /*use_cost_model=*/true);
  auto prepared = optimizer.Prepare(
      "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_TRUE(prepared->cost_based);
  EXPECT_FALSE(prepared->chosen_label.empty());
  EXPECT_GT(prepared->chosen_estimate.cost, 0.0);
  EXPECT_NE(prepared->Explain().find("cost-based choice"),
            std::string::npos);
  // Executing uses the pinned strategy and produces correct results.
  auto rows = optimizer.Execute(*prepared);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2000u);
}

TEST_F(CostModelTest, EstimatesAreOrderOfMagnitudeSane) {
  // Compare estimated vs actual cardinalities across several queries;
  // heuristics should land within ~4x.
  const char* queries[] = {
      "SELECT * FROM SUPPLIER WHERE SCITY = 'Toronto'",
      "SELECT DISTINCT SNAME FROM SUPPLIER",
      "SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
      "SELECT SNO FROM PARTS INTERSECT SELECT SNO FROM SUPPLIER",
  };
  for (const char* sql : queries) {
    PlanPtr plan = Bind(sql);
    double estimated = estimator_->EstimateRows(plan);
    ExecContext ctx;
    auto rows = ExecutePlan(plan, db_, &ctx);
    ASSERT_TRUE(rows.ok()) << sql;
    double actual = std::max<double>(1.0, static_cast<double>(rows->size()));
    EXPECT_LT(estimated / actual, 4.0) << sql;
    EXPECT_GT(estimated / actual, 0.25) << sql;
  }
}

}  // namespace
}  // namespace uniqopt
