# Empty dependencies file for uniqopt_exec.
# This may be replaced when dependencies are built.
