# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("types")
subdirs("expr")
subdirs("catalog")
subdirs("parser")
subdirs("fd")
subdirs("plan")
subdirs("analysis")
subdirs("rewrite")
subdirs("storage")
subdirs("exec")
subdirs("ims")
subdirs("oodb")
subdirs("workload")
subdirs("uniqopt")
