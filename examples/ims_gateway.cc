// IMS gateway walkthrough (§6.1, Example 10): the same SQL join runs
// against a hierarchical DL/I database with two strategies. The
// join→subquery rewrite (Theorem 2) licenses the nested strategy, which
// issues half the DL/I calls against the PARTS segment — and, when the
// join column is the non-sequence candidate key OEM-PNO, also stops
// scanning twins at the first match.
//
//   $ ims_gateway [num_suppliers] [parts_per_supplier]

#include <cstdio>
#include <cstdlib>

#include "analysis/subquery.h"
#include "ims/gateway.h"
#include "plan/binder.h"
#include "rewrite/rewriter.h"
#include "workload/supplier_schema.h"

namespace {

int Run(size_t num_suppliers, size_t parts_per_supplier) {
  using namespace uniqopt;

  Database db;
  SupplierSchemaOptions schema;
  schema.max_sno = static_cast<int64_t>(num_suppliers) + 1;
  if (!CreateSupplierSchema(&db, schema).ok()) return 1;
  SupplierDataOptions data;
  data.num_suppliers = num_suppliers;
  data.parts_per_supplier = parts_per_supplier;
  if (!PopulateSupplierDatabase(&db, data).ok()) return 1;

  auto ims_db = ims::BuildSupplierIms(db);
  if (!ims_db.ok()) {
    std::fprintf(stderr, "ims load: %s\n",
                 ims_db.status().ToString().c_str());
    return 1;
  }
  std::printf("IMS database loaded: %zu segments (Figure 2 hierarchy)\n\n",
              (*ims_db)->num_segments());

  // Show the SQL-level rewrite that licenses the nested strategy.
  const char* sql =
      "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO";
  std::printf("query:\n  %s\n\n", sql);
  Binder binder(&db.catalog());
  auto bound = binder.BindSql(sql);
  if (!bound.ok()) return 1;
  RewriteOptions opts;
  opts.join_to_subquery = true;  // the navigational-back-end policy
  opts.subquery_to_join = false;
  opts.subquery_to_distinct_join = false;
  auto rewritten = RewritePlan(bound->plan, opts);
  if (!rewritten.ok()) return 1;
  for (const AppliedRewrite& r : rewritten->applied) {
    std::printf("rewrite: %s — %s\n", RewriteRuleIdToString(r.rule),
                r.description.c_str());
  }
  std::printf("rewritten plan:\n%s\n", rewritten->plan->ToString().c_str());

  // Execute both DL/I programs and compare the call accounting.
  int64_t part_no = static_cast<int64_t>(parts_per_supplier / 2 + 1);
  auto join = ims::JoinStrategySuppliersForPart(**ims_db, part_no);
  auto nested = ims::NestedStrategySuppliersForPart(**ims_db, part_no);
  std::printf("— key-qualified probe (PNO = %lld) —\n",
              static_cast<long long>(part_no));
  std::printf("  join strategy   (lines 21-29): %zu rows, %s\n",
              join.rows.size(), join.stats.ToString().c_str());
  std::printf("  nested strategy (lines 30-35): %zu rows, %s\n",
              nested.rows.size(), nested.stats.ToString().c_str());
  std::printf("  PARTS call reduction: %zu -> %zu (%.2fx)\n\n",
              join.stats.calls_by_segment.at("PARTS"),
              nested.stats.calls_by_segment.at("PARTS"),
              static_cast<double>(join.stats.calls_by_segment.at("PARTS")) /
                  nested.stats.calls_by_segment.at("PARTS"));

  // Non-sequence-field (OEM-PNO) variant. Pick an OEM value belonging
  // to a mid-chain twin so the early halt is visible.
  int64_t oem = static_cast<int64_t>((num_suppliers / 2) * parts_per_supplier +
                                     parts_per_supplier / 2);
  auto join_oem = ims::JoinStrategySuppliersForOem(**ims_db, oem);
  auto nested_oem = ims::NestedStrategySuppliersForOem(**ims_db, oem);
  std::printf("— non-key probe (OEM_PNO = %lld) —\n",
              static_cast<long long>(oem));
  std::printf("  join strategy:   %zu rows, %s\n", join_oem.rows.size(),
              join_oem.stats.ToString().c_str());
  std::printf("  nested strategy: %zu rows, %s\n", nested_oem.rows.size(),
              nested_oem.stats.ToString().c_str());
  std::printf("  segments visited: %zu -> %zu\n",
              join_oem.stats.segments_visited,
              nested_oem.stats.segments_visited);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t suppliers = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  size_t parts = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;
  return Run(suppliers, parts);
}
