#ifndef UNIQOPT_EQUIV_SYMBOLIC_H_
#define UNIQOPT_EQUIV_SYMBOLIC_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "types/schema.h"

namespace uniqopt {
namespace equiv {

/// One base table inside a decomposed select/product block, placed at
/// its column offset within the block's concatenated row.
struct SymbolicTable {
  const GetNode* get = nullptr;
  size_t offset = 0;
};

/// A select/project/product block in normal form: base tables at fixed
/// offsets, the flattened conjunct set over the concatenated row, and
/// (when decomposed from a projection) the projection map. This is the
/// prover's own decomposition — it deliberately shares nothing with
/// src/analysis/ so the equivalence verdict stays a second opinion.
struct SymbolicSpec {
  std::vector<SymbolicTable> tables;
  std::vector<ExprPtr> conjuncts;  ///< AND-flattened; TRUE dropped.
  size_t width = 0;                ///< Concatenated row width.
  std::vector<size_t> columns;     ///< Projection map (top Project only).
  DuplicateMode mode = DuplicateMode::kAll;
  bool has_exists_filter = false;  ///< An ExistsNode filter was skipped.
};

/// Decomposes a σ/×/Get subtree (EXISTS filters are skipped over and
/// flagged). Fails on Project/SetOp/Aggregate nodes inside the block.
bool DecomposeBlock(const PlanPtr& plan, SymbolicSpec* spec);

/// Decomposes `Project(block)`; the top node must be a projection.
bool DecomposeProjection(const PlanPtr& plan, SymbolicSpec* spec);

/// A recognized equality conjunct: column = column (the paper's Type 2
/// search condition) or column = literal/host-variable (Type 1).
struct EqualityAtom {
  bool column_pair = false;
  size_t left = 0;      ///< Column index.
  size_t right = 0;     ///< Column index when `column_pair`.
  ExprPtr bound_value;  ///< Literal / host var when `!column_pair`.
};

/// Classifies a single conjunct; nullopt for anything that is not a
/// plain `=` atom of the two types above.
std::optional<EqualityAtom> ClassifyEqualityAtom(const ExprPtr& expr);

/// Fixpoint closure of `bound` under the spec's equality atoms: Type 1
/// atoms bind their column, Type 2 atoms propagate membership both ways.
std::vector<char> CloseOverEqualities(const SymbolicSpec& spec,
                                      std::vector<char> bound);

/// True when every table in `spec` has some candidate key whose columns
/// all lie in `bound`. On failure `first_uncovered` (if non-null) gets
/// the index (into spec.tables) of the first uncovered table.
bool AllKeysCovered(const SymbolicSpec& spec, const std::vector<char>& bound,
                    size_t* first_uncovered);

/// Independent structural duplicate-freeness judgment over a plan
/// subtree, from declared keys only (no FD engine — that is the point).
bool SymbolicallyDuplicateFree(const PlanPtr& plan);

/// Input to the two-row chase refutation: construct two rows of the
/// block's product that agree on every `bound` column, satisfy every
/// conjunct and every declared constraint, yet differ on table
/// `uncovered_table` — a constraint assignment under which π_Dist and
/// π_All multiplicities differ.
struct WitnessRequest {
  const SymbolicSpec* spec = nullptr;
  /// Full-width schema of the block row (names + types for the witness).
  const Schema* frame = nullptr;
  std::vector<char> bound;  ///< Closure; the rows must agree here.
  size_t uncovered_table = 0;
};

/// Attempts the chase construction. Returns the symbolic witness text on
/// success; nullopt when a soundness guard refuses (the guard is written
/// to `blocked_reason`), in which case the caller must report
/// EQUIV_UNPROVEN rather than EQUIV_REFUTED.
std::optional<std::string> BuildDuplicateWitness(const WitnessRequest& req,
                                                 std::string* blocked_reason);

/// Three-way outcome of a bounded test-point analysis. kUndecided is the
/// honest answer whenever the candidate set is not provably exhaustive
/// for the column's type and predicate shape.
enum class TestPointResult { kHolds, kFails, kUndecided };

/// Does every storable non-NULL value of `table.schema().column(ordinal)`
/// — every value its single-column CHECK constraints accept — make `pred`
/// TRUE? `pred` must reference exactly column `frame_col` of a
/// `frame_width`-wide row. kUndecided when no single-column CHECK governs
/// the column, a host variable appears, or the type precludes an exact
/// test-point set.
TestPointResult CheckImpliesPredicate(const TableDef& table, size_t ordinal,
                                      const ExprPtr& pred, size_t frame_col,
                                      size_t frame_width);

/// Is there no storable value of the column (NULL included when
/// `nullable`) for which `pred` evaluates to TRUE? kHolds certifies the
/// selection is empty whenever `pred` is among its false-interpreted
/// conjuncts.
TestPointResult CheckExcludesPredicate(const TableDef& table, size_t ordinal,
                                       const ExprPtr& pred, size_t frame_col,
                                       size_t frame_width, bool nullable);

}  // namespace equiv
}  // namespace uniqopt

#endif  // UNIQOPT_EQUIV_SYMBOLIC_H_
