// The symbolic equivalence prover must (a) certify every rewrite the
// optimizer actually fires — the paper's worked examples and a 300+
// random-query sweep end EQUIV_PROVEN or (rarely) EQUIV_UNPROVEN, never
// EQUIV_REFUTED — and (b) refute seeded unsound evidence with a concrete
// symbolic counterexample witness: a forged DISTINCT drop with no
// supporting key, and a Theorem 3 lowering whose correlation uses plain
// `=` over nullable columns. The schema linter half is exercised against
// deliberately inconsistent catalogs.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "equiv/equiv.h"
#include "equiv/schema_lint.h"
#include "test_util.h"
#include "uniqopt/uniqopt.h"
#include "workload/random_query.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

using equiv::Certificate;
using equiv::Verdict;

class EquivTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(CreateSupplierSchema(&db_));
    optimizer_ = std::make_unique<Optimizer>(&db_);
  }

  const TableDef* Def(const std::string& name) {
    auto def = db_.catalog().GetTable(name);
    EXPECT_TRUE(def.ok());
    return def.ok() ? *def : nullptr;
  }

  PlanPtr Bind(const std::string& sql) {
    Binder binder(&db_.catalog());
    auto bound = binder.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status().ToString();
    return bound.ok() ? bound->plan : nullptr;
  }

  /// Rewrites `sql` under `options` and certifies every fired rewrite.
  std::vector<Certificate> Certify(const std::string& sql,
                                   const RewriteOptions& options = {}) {
    std::vector<Certificate> certs;
    PlanPtr plan = Bind(sql);
    if (plan == nullptr) return certs;
    auto rewritten = RewritePlan(plan, options);
    EXPECT_TRUE(rewritten.ok()) << sql;
    if (!rewritten.ok()) return certs;
    EXPECT_FALSE(rewritten->applied.empty())
        << sql << ": expected at least one rewrite to fire";
    for (const AppliedRewrite& r : rewritten->applied) {
      certs.push_back(equiv::CertifyRewrite(r));
    }
    return certs;
  }

  Database db_;
  std::unique_ptr<Optimizer> optimizer_;
};

// ---------------------------------------------------------------------------
// Production rewrites over the paper's worked examples: all proven.
// ---------------------------------------------------------------------------

TEST_F(EquivTest, PaperExampleRewritesAreAllProven) {
  struct Example {
    const char* id;
    const char* sql;
  };
  const Example examples[] = {
      {"example1 distinct removal",
       "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
       "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"},
      {"example4 distinct removal with host variable",
       "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, "
       "PARTS P WHERE P.SNO = :SUPPLIER_NO AND S.SNO = P.SNO"},
      {"example6 distinct removal via join transitivity",
       "SELECT DISTINCT S.SNO, PNO, PNAME, P.COLOR FROM SUPPLIER S, "
       "PARTS P WHERE S.SNAME = :SUPPLIER_NAME AND S.SNO = P.SNO"},
      {"example7 subquery to join (Theorem 2)",
       "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE "
       "S.SNAME = :SUPPLIER_NAME AND EXISTS (SELECT * FROM PARTS P "
       "WHERE S.SNO = P.SNO AND P.PNO = :PART_NO)"},
      {"example8 subquery to distinct join (Corollary 1)",
       "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
       "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')"},
      {"example9 intersect to exists (Theorem 3)",
       "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
       "INTERSECT SELECT ALL A.SNO FROM AGENTS A WHERE "
       "A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'"},
      {"intersect all to exists (Corollary 2)",
       "SELECT SNO FROM SUPPLIER INTERSECT ALL SELECT SNO FROM PARTS"},
      {"except to not exists",
       "SELECT SNO FROM SUPPLIER EXCEPT SELECT SNO FROM AGENTS"},
      {"join elimination over the declared foreign key",
       "SELECT P.PNO, P.PNAME FROM PARTS P, SUPPLIER S "
       "WHERE P.SNO = S.SNO"},
      {"implied predicate removal against the CHECK range",
       "SELECT SNAME FROM SUPPLIER WHERE SNO BETWEEN 1 AND 499"},
      {"empty result detection outside the CHECK range",
       "SELECT SNAME FROM SUPPLIER WHERE SNO = 600"},
      {"group-by elimination on a covered key",
       "SELECT SNO, SUM(BUDGET) FROM SUPPLIER GROUP BY SNO"},
  };
  for (const Example& ex : examples) {
    std::vector<Certificate> certs = Certify(ex.sql);
    ASSERT_FALSE(certs.empty()) << ex.id;
    for (const Certificate& cert : certs) {
      EXPECT_EQ(cert.verdict, Verdict::kProven)
          << ex.id << "\n" << cert.ToString();
      EXPECT_TRUE(cert.witness.empty()) << ex.id;
    }
  }
}

TEST_F(EquivTest, OptInConverseRulesAreProven) {
  // §6 join → subquery, valid when the discarded side matches at most
  // once (Theorem 2 read backwards).
  RewriteOptions nav;
  nav.join_to_subquery = true;
  nav.subquery_to_join = false;
  nav.subquery_to_distinct_join = false;
  for (const Certificate& cert :
       Certify("SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
               "WHERE S.SNO = P.SNO AND P.PNO = :PN",
               nav)) {
    EXPECT_EQ(cert.verdict, Verdict::kProven) << cert.ToString();
  }

  // §5.3's converse observation: EXISTS back to INTERSECT.
  PlanPtr plan = Bind(
      "SELECT SNO FROM SUPPLIER INTERSECT SELECT SNO FROM AGENTS");
  ASSERT_NE(plan, nullptr);
  auto forward = RewritePlan(plan);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(forward->Applied(RewriteRuleId::kIntersectToExists));
  RewriteOptions back_opts;
  back_opts.exists_to_intersect = true;
  back_opts.intersect_to_exists = false;
  back_opts.intersect_all_to_exists = false;
  back_opts.except_to_not_exists = false;
  auto back = RewritePlan(forward->plan, back_opts);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->Applied(RewriteRuleId::kExistsToIntersect));
  for (const AppliedRewrite& r : back->applied) {
    Certificate cert = equiv::CertifyRewrite(r);
    EXPECT_EQ(cert.verdict, Verdict::kProven) << cert.ToString();
  }
}

// ---------------------------------------------------------------------------
// Seeded unsound fixtures: refuted with a symbolic witness.
// ---------------------------------------------------------------------------

TEST_F(EquivTest, ForgedDistinctDropIsRefutedWithWitness) {
  // Example 2: S.SNAME carries no key, so two suppliers sharing a name
  // (legal under the declared constraints) duplicate the output row.
  PlanPtr before = Bind(
      "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_NE(before, nullptr);
  const ProjectNode* proj = As<ProjectNode>(before);
  ASSERT_NE(proj, nullptr);
  AppliedRewrite forged;
  forged.rule = RewriteRuleId::kRemoveRedundantDistinct;
  forged.description = "forged: no key supports this projection";
  forged.evidence.before = before;
  forged.evidence.after =
      ProjectNode::Make(proj->input(), DuplicateMode::kAll, proj->columns());
  forged.evidence.condition_proven = true;

  Certificate cert = equiv::CertifyRewrite(forged);
  EXPECT_EQ(cert.verdict, Verdict::kRefuted) << cert.ToString();
  EXPECT_FALSE(cert.witness.empty()) << cert.ToString();
  // The witness is a two-row instance: both rows agree on the
  // projection, so the DISTINCT side emits one row and the ALL side two.
  EXPECT_NE(cert.witness.find("r1"), std::string::npos) << cert.witness;
  EXPECT_NE(cert.witness.find("r2"), std::string::npos) << cert.witness;
  EXPECT_NE(cert.witness.find("differ"), std::string::npos) << cert.witness;
}

TEST_F(EquivTest, PlainEqualityOverNullableCorrelationIsRefuted) {
  // A forged Theorem 3 lowering comparing nullable SNAME/ANAME with
  // plain `=` instead of the null-safe `=!`: the NULL tuple survives the
  // INTERSECT (NULL =! NULL is true) but drops out of the EXISTS.
  PlanPtr supplier = GetNode::Make(Def("SUPPLIER"), "S");
  PlanPtr agents = GetNode::Make(Def("AGENTS"), "A");
  PlanPtr outer = ProjectNode::Make(supplier, DuplicateMode::kAll, {1});
  PlanPtr sub = ProjectNode::Make(agents, DuplicateMode::kAll, {2});
  ASSERT_TRUE(outer->schema().column(0).nullable);
  ASSERT_TRUE(sub->schema().column(0).nullable);
  auto setop = SetOpNode::Make(SetOpAlgebra::kIntersect,
                               DuplicateMode::kDist, outer, sub);
  ASSERT_TRUE(setop.ok()) << setop.status().ToString();
  ExprPtr plain_eq = Expr::Compare(
      CompareOp::kEq, Expr::ColumnRef(0, "S.SNAME", TypeId::kString),
      Expr::ColumnRef(1, "A.ANAME", TypeId::kString));

  AppliedRewrite forged;
  forged.rule = RewriteRuleId::kIntersectToExists;
  forged.description = "forged: 3VL-unsound correlation";
  forged.evidence.before = *setop;
  forged.evidence.after = ExistsNode::Make(outer, sub, plain_eq, false);
  forged.evidence.condition_proven = true;

  Certificate cert = equiv::CertifyRewrite(forged);
  EXPECT_EQ(cert.verdict, Verdict::kRefuted) << cert.ToString();
  EXPECT_FALSE(cert.witness.empty()) << cert.ToString();
  EXPECT_NE(cert.witness.find("NULL"), std::string::npos) << cert.witness;
}

TEST_F(EquivTest, CorrectRewriteBeyondTheProverIsUnprovenNotRefuted) {
  // AGENTS is reached only through its key ANO; the PARTS key needs
  // A.SNO, which the prover's equality closure cannot derive from ANO
  // coverage (that step needs FD expansion, deliberately out of scope
  // for the independent checker). The rewrite is semantically correct —
  // the production analyzer proves it with the stronger machinery — so
  // the honest verdict is EQUIV_UNPROVEN, never EQUIV_REFUTED.
  PlanPtr plan = Bind(
      "SELECT DISTINCT A.ANO, P.PNAME FROM AGENTS A, PARTS P "
      "WHERE A.SNO = P.SNO AND P.PNO = :P");
  ASSERT_NE(plan, nullptr);
  auto rewritten = RewritePlan(plan);
  ASSERT_TRUE(rewritten.ok());
  ASSERT_TRUE(rewritten->Applied(RewriteRuleId::kRemoveRedundantDistinct))
      << "production analyzer no longer proves this fixture; pick a new "
         "beyond-the-prover query";
  for (const AppliedRewrite& r : rewritten->applied) {
    if (r.rule != RewriteRuleId::kRemoveRedundantDistinct) continue;
    Certificate cert = equiv::CertifyRewrite(r);
    EXPECT_EQ(cert.verdict, Verdict::kUnproven) << cert.ToString();
    EXPECT_TRUE(cert.witness.empty()) << cert.ToString();
    EXPECT_FALSE(cert.detail.empty());
  }
}

TEST_F(EquivTest, EvidenceWithoutSubtreesIsUnproven) {
  AppliedRewrite hollow;
  hollow.rule = RewriteRuleId::kRemoveRedundantDistinct;
  hollow.evidence.condition_proven = true;
  Certificate cert = equiv::CertifyRewrite(hollow);
  EXPECT_EQ(cert.verdict, Verdict::kUnproven);
  EXPECT_TRUE(cert.witness.empty());
}

// ---------------------------------------------------------------------------
// Pipeline surfacing: verdicts ride the VerifyReport through Prepare.
// ---------------------------------------------------------------------------

TEST_F(EquivTest, PrepareSurfacesCertificatesInVerifyReport) {
  auto prepared = optimizer_->Prepare(
      "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_TRUE(prepared->verified);
  const verify::VerifyReport& report = prepared->verification;
  EXPECT_EQ(report.certificates.size(), prepared->rewrites.size());
  EXPECT_GE(report.equiv_proven, 1u) << report.ToString();
  EXPECT_EQ(report.equiv_refuted, 0u) << report.ToString();
  EXPECT_NE(report.Summary().find("equiv"), std::string::npos)
      << report.Summary();
  EXPECT_NE(report.ToString().find("EQUIV_PROVEN"), std::string::npos)
      << report.ToString();

  // The prover can be switched off per optimizer; the report then
  // carries no certificates.
  Optimizer no_equiv(&db_);
  no_equiv.set_check_equiv(false);
  auto plain = no_equiv.Prepare(
      "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->verification.certificates.empty());
}

// ---------------------------------------------------------------------------
// Random sweep: no production rewrite is ever refuted.
// ---------------------------------------------------------------------------

/// Upper bound on the sweep's EQUIV_UNPROVEN share. The prover's
/// closure deliberately has no key -> all-columns FD expansion (it must
/// stay independent of src/analysis/), so rewrites whose uniqueness
/// rides on such an FD are honestly UNPROVEN — about a third of the
/// random workload at the pinned seeds. Pinned with headroom: a jump
/// past this means the prover lost power or the rewriter started firing
/// on weaker evidence.
constexpr double kMaxUnprovenShare = 0.40;

TEST_F(EquivTest, RandomSweepNeverRefutesAProductionRewrite) {
  size_t proven = 0;
  size_t unproven = 0;
  size_t queries = 0;
  for (uint64_t seed : {7u, 21u, 63u, 189u}) {
    RandomQueryOptions qopts;
    qopts.seed = seed;
    qopts.always_distinct = false;
    qopts.group_by_probability = 0.2;
    RandomQueryGenerator gen(qopts);
    for (int i = 0; i < 80; ++i) {
      std::string sql = gen.NextQuery();
      PlanPtr plan = Bind(sql);
      ASSERT_NE(plan, nullptr) << sql;
      auto rewritten = RewritePlan(plan);
      ASSERT_TRUE(rewritten.ok()) << sql;
      ++queries;
      for (const AppliedRewrite& r : rewritten->applied) {
        Certificate cert = equiv::CertifyRewrite(r);
        ASSERT_NE(cert.verdict, Verdict::kRefuted)
            << sql << "\n" << cert.ToString();
        if (cert.verdict == Verdict::kProven) {
          ++proven;
        } else {
          ++unproven;
        }
      }
    }
  }
  ASSERT_GE(queries, 300u);
  size_t total = proven + unproven;
  ASSERT_GT(total, 0u) << "sweep fired no rewrites at all";
  EXPECT_LE(static_cast<double>(unproven),
            kMaxUnprovenShare * static_cast<double>(total))
      << proven << " proven vs " << unproven << " unproven";
}

// ---------------------------------------------------------------------------
// Schema lint: catalog constraint consistency.
// ---------------------------------------------------------------------------

size_t CountKind(const std::vector<equiv::SchemaLintFinding>& findings,
                 equiv::SchemaLintKind kind) {
  size_t n = 0;
  for (const equiv::SchemaLintFinding& f : findings) {
    if (f.kind == kind) ++n;
  }
  return n;
}

TEST(SchemaLintTest, CleanSupplierCatalogHasNoFindings) {
  Database db;
  ASSERT_OK(CreateSupplierSchema(&db));
  std::vector<equiv::SchemaLintFinding> findings =
      equiv::LintCatalog(db.catalog());
  EXPECT_TRUE(findings.empty()) << findings.size() << " finding(s), first: "
                                << findings.front().ToString();
}

TEST(SchemaLintTest, DuplicateAndRedundantKeysAreFlagged) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T (A INTEGER NOT NULL, B INTEGER NOT NULL, "
      "PRIMARY KEY (A), UNIQUE (A), UNIQUE (A, B))"));
  std::vector<equiv::SchemaLintFinding> findings =
      equiv::LintCatalog(db.catalog());
  EXPECT_GE(CountKind(findings, equiv::SchemaLintKind::kDuplicateKey), 1u);
  EXPECT_GE(CountKind(findings, equiv::SchemaLintKind::kRedundantKey), 1u);
}

TEST(SchemaLintTest, UnsatisfiableCheckIsFlagged) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE U (A INTEGER NOT NULL, CHECK (A > 5 AND A < 3))"));
  std::vector<equiv::SchemaLintFinding> findings =
      equiv::LintCatalog(db.catalog());
  EXPECT_GE(CountKind(findings, equiv::SchemaLintKind::kUnsatisfiableCheck),
            1u)
      << "findings: " << findings.size();
}

TEST(SchemaLintTest, NotNullSourceOntoNullableKeyIsFlagged) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE R (X INTEGER, UNIQUE (X))"));
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE S2 (Y INTEGER NOT NULL, "
      "FOREIGN KEY (Y) REFERENCES R (X))"));
  std::vector<equiv::SchemaLintFinding> findings =
      equiv::LintCatalog(db.catalog());
  EXPECT_GE(CountKind(findings, equiv::SchemaLintKind::kNotNullFkConflict),
            1u);
}

TEST(SchemaLintTest, SelfReferentialForeignKeyCycleIsFlagged) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T2 (A INTEGER NOT NULL, B INTEGER, PRIMARY KEY (A), "
      "FOREIGN KEY (B) REFERENCES T2 (A))"));
  std::vector<equiv::SchemaLintFinding> findings =
      equiv::LintCatalog(db.catalog());
  EXPECT_GE(CountKind(findings, equiv::SchemaLintKind::kForeignKeyCycle), 1u);
}

TEST(SchemaLintTest, DroppedReferenceTargetBecomesDangling) {
  // Catalog::DropTable does not re-validate other tables' inclusion
  // dependencies; the linter is how the gap surfaces.
  Catalog catalog;
  {
    Schema rs;
    rs.AddColumn(Column{"", "K", TypeId::kInteger, /*nullable=*/false});
    TableDef r("REF_T", std::move(rs));
    ASSERT_OK(r.SetPrimaryKey({"K"}));
    ASSERT_OK(catalog.AddTable(std::move(r)));
  }
  {
    Schema cs;
    cs.AddColumn(Column{"", "X", TypeId::kInteger, /*nullable=*/false});
    TableDef c("CHILD", std::move(cs));
    ASSERT_OK(c.AddForeignKey({"X"}, "REF_T", {"K"}));
    ASSERT_OK(catalog.AddTable(std::move(c)));
  }
  EXPECT_TRUE(equiv::LintCatalog(catalog).empty());
  ASSERT_OK(catalog.DropTable("REF_T"));
  std::vector<equiv::SchemaLintFinding> findings =
      equiv::LintCatalog(catalog);
  EXPECT_GE(CountKind(findings, equiv::SchemaLintKind::kDanglingForeignKey),
            1u);
}

TEST(SchemaLintTest, FindingsPublishToTheAdvisorStore) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T (A INTEGER NOT NULL, PRIMARY KEY (A), UNIQUE (A))"));
  std::vector<equiv::SchemaLintFinding> findings =
      equiv::LintCatalog(db.catalog());
  ASSERT_FALSE(findings.empty());
  obs::AdvisorStore& store = obs::AdvisorStore::Global();
  store.Clear();
  if (!store.enabled()) GTEST_SKIP() << "advisor store disabled";
  size_t published = equiv::PublishSchemaFindings(findings);
  EXPECT_EQ(published, findings.size());
  EXPECT_GE(store.size(), 1u);
  EXPECT_NE(store.ToText().find("schema.lint"), std::string::npos)
      << store.ToText();
  store.Clear();
}

}  // namespace
}  // namespace uniqopt
