#include "obs/advisor.h"

#include <algorithm>

#include "obs/export.h"
#include "obs/metrics.h"

namespace uniqopt {
namespace obs {

namespace {

constexpr size_t kMaxSamplesPerEntry = 8;

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

uint64_t MaxGoalWeight(const std::map<std::string, uint64_t>& goal_hits) {
  uint64_t best = 1;
  for (const auto& [goal, hits] : goal_hits) {
    best = std::max(best, GoalWeight(goal));
  }
  return best;
}

}  // namespace

const char* MissingFactKindName(MissingFactKind kind) {
  switch (kind) {
    case MissingFactKind::kUniqueKey:
      return "unique_key";
    case MissingFactKind::kFunctionalDependency:
      return "functional_dependency";
    case MissingFactKind::kNotNull:
      return "not_null";
  }
  return "unknown";
}

std::string NearMiss::ToString() const {
  return table + ": " + fact + " (" + goal + ")";
}

uint64_t GoalWeight(const std::string& goal) {
  if (HasPrefix(goal, "theorem2")) return 4;
  if (HasPrefix(goal, "theorem1") || HasPrefix(goal, "groupby")) return 3;
  if (HasPrefix(goal, "theorem3") || HasPrefix(goal, "corollary")) return 2;
  return 1;
}

AdvisorStore& AdvisorStore::Global() {
  static AdvisorStore* store = new AdvisorStore();
  return *store;
}

void AdvisorStore::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool AdvisorStore::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void AdvisorStore::Record(const NearMiss& miss, uint64_t fingerprint,
                          const std::string& canonical_sql) {
  size_t num_entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) return;
    Entry& entry = entries_[miss.table + '\0' + miss.fact];
    entry.kind = miss.kind;
    entry.replay_key_columns = miss.replay_key_columns;
    ++entry.goal_hits[miss.goal];
    ++entry.hits;
    if (entry.fingerprints.insert(fingerprint).second &&
        entry.sample_queries.size() < kMaxSamplesPerEntry &&
        !canonical_sql.empty()) {
      entry.sample_queries.push_back(canonical_sql);
    }
    num_entries = entries_.size();
  }
  MetricsRegistry::Global().GetCounter("advisor.near_misses").Increment();
  MetricsRegistry::Global()
      .GetGauge("advisor.suggestions")
      .Set(static_cast<int64_t>(num_entries));
}

std::vector<AdvisorSuggestion> AdvisorStore::Suggestions() const {
  std::vector<AdvisorSuggestion> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      AdvisorSuggestion s;
      s.table = key.substr(0, key.find('\0'));
      s.kind = entry.kind;
      s.fact = key.substr(key.find('\0') + 1);
      s.replay_key_columns = entry.replay_key_columns;
      s.goal_hits = entry.goal_hits;
      s.hits = entry.hits;
      s.distinct_queries = entry.fingerprints.size();
      s.estimated_benefit =
          MaxGoalWeight(entry.goal_hits) * s.distinct_queries;
      s.sample_queries = entry.sample_queries;
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AdvisorSuggestion& a, const AdvisorSuggestion& b) {
              if (a.estimated_benefit != b.estimated_benefit) {
                return a.estimated_benefit > b.estimated_benefit;
              }
              if (a.hits != b.hits) return a.hits > b.hits;
              if (a.table != b.table) return a.table < b.table;
              return a.fact < b.fact;
            });
  return out;
}

void AdvisorStore::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }
  MetricsRegistry::Global().GetGauge("advisor.suggestions").Set(0);
}

void AdvisorStore::PurgeTable(const std::string& table) {
  size_t remaining = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::string prefix = table + '\0';
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    remaining = entries_.size();
  }
  MetricsRegistry::Global().GetGauge("advisor.suggestions").Set(
      static_cast<int64_t>(remaining));
}

size_t AdvisorStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string AdvisorStore::ToText() const {
  std::vector<AdvisorSuggestion> suggestions = Suggestions();
  if (suggestions.empty()) {
    return "advisor: no near-misses recorded\n";
  }
  std::string out = "constraint advisor: " +
                    std::to_string(suggestions.size()) + " suggestion(s)\n";
  size_t rank = 0;
  for (const AdvisorSuggestion& s : suggestions) {
    out += "  #" + std::to_string(++rank) + " " + s.table + ": " + s.fact +
           "  [" + MissingFactKindName(s.kind) + "]\n";
    out += "      hits=" + std::to_string(s.hits) +
           " distinct_queries=" + std::to_string(s.distinct_queries) +
           " est_benefit=" + std::to_string(s.estimated_benefit) + "\n";
    for (const auto& [goal, hits] : s.goal_hits) {
      out += "      goal " + goal + ": " + std::to_string(hits) + "\n";
    }
    for (const std::string& sample : s.sample_queries) {
      out += "      e.g. " + sample + "\n";
    }
  }
  return out;
}

std::string AdvisorStore::ToJson() const {
  std::vector<AdvisorSuggestion> suggestions = Suggestions();
  std::string out = "{\n  \"suggestions\": [";
  bool first = true;
  for (const AdvisorSuggestion& s : suggestions) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\n";
    out += "      \"table\": \"" + JsonEscape(s.table) + "\",\n";
    out += "      \"kind\": \"" + std::string(MissingFactKindName(s.kind)) +
           "\",\n";
    out += "      \"fact\": \"" + JsonEscape(s.fact) + "\",\n";
    out += "      \"replay_key_columns\": [";
    for (size_t i = 0; i < s.replay_key_columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + JsonEscape(s.replay_key_columns[i]) + "\"";
    }
    out += "],\n";
    out += "      \"hits\": " + std::to_string(s.hits) + ",\n";
    out += "      \"distinct_queries\": " +
           std::to_string(s.distinct_queries) + ",\n";
    out += "      \"estimated_benefit\": " +
           std::to_string(s.estimated_benefit) + ",\n";
    out += "      \"goals\": {";
    bool first_goal = true;
    for (const auto& [goal, hits] : s.goal_hits) {
      if (!first_goal) out += ", ";
      first_goal = false;
      out += "\"" + JsonEscape(goal) + "\": " + std::to_string(hits);
    }
    out += "},\n";
    out += "      \"sample_queries\": [";
    for (size_t i = 0; i < s.sample_queries.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + JsonEscape(s.sample_queries[i]) + "\"";
    }
    out += "]\n    }";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace obs
}  // namespace uniqopt
