// Concurrency hammer for the plan cache: many threads prepare a mixed
// hit/miss workload against ONE Optimizer and every thread must see
// exactly the plan a single-threaded optimizer produces, with zero
// verifier violations. Runs under ThreadSanitizer in check.sh --tsan,
// where any data race between the hit path (shared lock + atomics) and
// the miss path (insert/evict under the exclusive lock) is fatal.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "uniqopt/uniqopt.h"
#include "workload/query_corpus.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

constexpr unsigned kThreads = 8;
constexpr int kRoundsPerThread = 12;

std::vector<std::string> CorpusSql() {
  std::vector<std::string> out;
  for (const CorpusQuery& q : DistinctQueryCorpus()) out.push_back(q.sql);
  return out;
}

TEST(ConcurrentPrepareTest, EightThreadsMixedCorpusIdenticalPlans) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));

  // Reference plans from a single-threaded optimizer with its own
  // (fresh) cache.
  Optimizer reference(&db);
  reference.set_verify_plans(true);
  std::vector<std::string> corpus = CorpusSql();
  ASSERT_GE(corpus.size(), 10u);
  std::map<std::string, std::string> expected_plan;
  std::map<std::string, uint64_t> expected_hash;
  for (const std::string& sql : corpus) {
    ASSERT_OK_AND_ASSIGN(PreparedQuery q, reference.Prepare(sql));
    expected_plan[sql] = q.optimized_plan->ToString();
    expected_hash[sql] = q.plan_hash;
  }

  // Hammer a second, cold optimizer: the first thread to reach a query
  // takes the miss path (full prepare + insert) while others race it on
  // the hit path for queries prepared in earlier rounds.
  Optimizer hammered(&db);
  hammered.set_verify_plans(true);
  std::atomic<int> mismatches{0};
  std::atomic<int> violations{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        for (size_t i = 0; i < corpus.size(); ++i) {
          // Interleave differently per thread so hits and misses mix.
          const std::string& sql = corpus[(i + t + round) % corpus.size()];
          auto r = hammered.PrepareShared(sql);
          if (!r.ok()) {
            failures.fetch_add(1);
            continue;
          }
          const PreparedQuery& q = **r;
          if (q.optimized_plan->ToString() != expected_plan[sql] ||
              q.plan_hash != expected_hash[sql]) {
            mismatches.fetch_add(1);
          }
          if (!q.verified || !q.verification.violations.empty()) {
            violations.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(violations.load(), 0);
  // Every query prepared once cold at most a handful of times (racing
  // first-misses may each compute), everything else served as a hit.
  cache::LruStats stats = hammered.plan_cache()->Stats();
  EXPECT_EQ(stats.entries, corpus.size());
  EXPECT_GT(stats.hits, stats.misses);
}

TEST(ConcurrentPrepareTest, PrepareBatchMatchesSerialPrepares) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  std::vector<std::string> corpus = CorpusSql();

  Optimizer serial(&db);
  std::vector<uint64_t> expected;
  for (const std::string& sql : corpus) {
    ASSERT_OK_AND_ASSIGN(PreparedQuery q, serial.Prepare(sql));
    expected.push_back(q.plan_hash);
  }

  Optimizer batched(&db);
  ASSERT_OK_AND_ASSIGN(auto prepared,
                       batched.PrepareBatch(corpus, kThreads));
  ASSERT_EQ(prepared.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    ASSERT_NE(prepared[i], nullptr);
    EXPECT_EQ(prepared[i]->sql, corpus[i]);
    EXPECT_EQ(prepared[i]->plan_hash, expected[i]) << corpus[i];
  }
}

TEST(ConcurrentPrepareTest, PrepareBatchReportsLowestIndexError) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);
  std::vector<std::string> sqls = {
      "SELECT SNO FROM SUPPLIER",
      "SELECT NOPE FROM MISSING_TABLE",
      "SELECT SNAME FROM SUPPLIER",
  };
  auto r = optimizer.PrepareBatch(sqls, 4);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("MISSING_TABLE"), std::string::npos);
}

TEST(ConcurrentPrepareTest, ConcurrentExecuteOfSharedEntries) {
  // Hits share one immutable PreparedQuery across threads; executing it
  // concurrently must be safe (ExecContext is per-call).
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);
  const std::string sql = "SELECT DISTINCT SNO FROM SUPPLIER";
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const PreparedQuery> entry,
                       optimizer.PrepareShared(sql));
  std::atomic<int> bad{0};
  size_t expected_rows = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, optimizer.Execute(*entry));
    expected_rows = rows.size();
  }
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        auto shared = optimizer.PrepareShared(sql);
        if (!shared.ok()) {
          bad.fetch_add(1);
          continue;
        }
        auto rows = optimizer.Execute(**shared);
        if (!rows.ok() || rows->size() != expected_rows) bad.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace uniqopt
