#include "workload/random_query.h"

#include <vector>

namespace uniqopt {

struct RandomQueryGenerator::TableInfo {
  const char* name;
  const char* alias;
  std::vector<const char*> int_columns;
  std::vector<const char*> string_columns;
  /// Values the data generator produces for the first string column.
  std::vector<const char*> string_palette;
};

namespace {

const RandomQueryGenerator::TableInfo kSupplier{
    "SUPPLIER",
    "S",
    {"SNO"},
    {"SNAME", "SCITY", "STATUS"},
    {"Chicago", "New York", "Toronto"}};
const RandomQueryGenerator::TableInfo kParts{
    "PARTS",
    "P",
    {"SNO", "PNO", "OEM_PNO"},
    {"PNAME", "COLOR"},
    {"RED", "GREEN", "BLUE", "YELLOW"}};
const RandomQueryGenerator::TableInfo kAgents{
    "AGENTS",
    "A",
    {"SNO", "ANO"},
    {"ANAME", "ACITY"},
    {"Ottawa", "Hull", "Toronto", "Montreal"}};

const RandomQueryGenerator::TableInfo* kTables[] = {&kSupplier, &kParts,
                                                    &kAgents};

}  // namespace

const RandomQueryGenerator::TableInfo& RandomQueryGenerator::PickTable() {
  return *kTables[rng_() % 3];
}

std::string RandomQueryGenerator::RandomPredicate(const std::string& alias,
                                                  const TableInfo& table) {
  switch (rng_() % 5) {
    case 0: {  // int equality with constant
      const char* col = table.int_columns[rng_() % table.int_columns.size()];
      return alias + "." + col + " = " + std::to_string(1 + rng_() % 20);
    }
    case 1: {  // string equality from palette
      const char* col =
          table.string_columns[rng_() % table.string_columns.size()];
      // Only COLOR/SCITY/ACITY have palettes; names use the generator's
      // NAME-k convention.
      std::string value;
      std::string c = col;
      if (c == "COLOR" || c == "SCITY" || c == "ACITY") {
        value = table.string_palette[rng_() % table.string_palette.size()];
      } else if (c == "STATUS") {
        value = (rng_() % 2 == 0) ? "Active" : "Inactive";
      } else {
        value = std::string(table.name).substr(0, 1) +
                "-" + std::to_string(1 + rng_() % 30);
        value = (c == "SNAME" ? "SUPPLIER-" : c == "PNAME" ? "PART-"
                                                           : "AGENT-") +
                std::to_string(1 + rng_() % 30);
      }
      return alias + "." + c + " = '" + value + "'";
    }
    case 2: {  // range
      const char* col = table.int_columns[rng_() % table.int_columns.size()];
      int64_t lo = static_cast<int64_t>(1 + rng_() % 10);
      return alias + "." + col + " BETWEEN " + std::to_string(lo) + " AND " +
             std::to_string(lo + static_cast<int64_t>(rng_() % 20));
    }
    case 3: {  // IN list
      const char* col = table.int_columns[rng_() % table.int_columns.size()];
      return alias + "." + col + " IN (" + std::to_string(1 + rng_() % 10) +
             ", " + std::to_string(1 + rng_() % 10) + ")";
    }
    default: {  // IS [NOT] NULL on a nullable column
      const char* col =
          table.string_columns[rng_() % table.string_columns.size()];
      return alias + "." + col +
             (rng_() % 2 == 0 ? " IS NULL" : " IS NOT NULL");
    }
  }
}

std::string RandomQueryGenerator::NextQuery() {
  size_t num_tables = 1 + rng_() % options_.max_tables;
  const TableInfo* t1 = &PickTable();
  const TableInfo* t2 = nullptr;
  if (num_tables == 2) {
    do {
      t2 = &PickTable();
    } while (t2 == t1);
  }

  auto all_columns = [](const TableInfo& t) {
    std::vector<std::string> cols;
    for (const char* c : t.int_columns) cols.push_back(c);
    for (const char* c : t.string_columns) cols.push_back(c);
    return cols;
  };

  // Projection: 1..4 random columns across the chosen tables.
  std::vector<std::string> proj;
  size_t proj_count = 1 + rng_() % 4;
  for (size_t i = 0; i < proj_count; ++i) {
    const TableInfo* t = (t2 != nullptr && rng_() % 2 == 0) ? t2 : t1;
    std::vector<std::string> cols = all_columns(*t);
    std::string col = std::string(t->alias) + "." + cols[rng_() % cols.size()];
    bool dup = false;
    for (const std::string& p : proj) dup = dup || p == col;
    if (!dup) proj.push_back(std::move(col));
  }

  std::uniform_real_distribution<double> unit01(0.0, 1.0);
  bool grouped = unit01(rng_) < options_.group_by_probability;

  std::string sql = options_.always_distinct || rng_() % 2 == 0
                        ? "SELECT DISTINCT "
                        : "SELECT ";
  for (size_t i = 0; i < proj.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += proj[i];
  }
  if (grouped) {
    // Aggregates over the first table's columns.
    sql += ", COUNT(*)";
    const char* icol = t1->int_columns[rng_() % t1->int_columns.size()];
    switch (rng_() % 3) {
      case 0:
        sql += std::string(", SUM(") + t1->alias + "." + icol + ")";
        break;
      case 1:
        sql += std::string(", MIN(") + t1->alias + "." + icol + ")";
        break;
      default:
        sql += std::string(", AVG(") + t1->alias + "." + icol + ")";
        break;
    }
  }
  sql += " FROM ";
  sql += t1->name;
  sql += " ";
  sql += t1->alias;
  if (t2 != nullptr) {
    sql += ", ";
    sql += t2->name;
    sql += " ";
    sql += t2->alias;
  }

  std::vector<std::string> predicates;
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  if (t2 != nullptr && unit(rng_) < options_.join_probability) {
    predicates.push_back(std::string(t1->alias) + ".SNO = " + t2->alias +
                         ".SNO");
  }
  size_t extra = rng_() % (options_.max_predicates + 1);
  for (size_t i = 0; i < extra; ++i) {
    if (unit(rng_) < options_.exists_probability) {
      // Correlated EXISTS against a third table.
      const TableInfo* sub = kTables[rng_() % 3];
      if (sub == t1 || sub == t2) continue;
      std::string alias = std::string(sub->alias) + "2";
      std::string pred = std::string("EXISTS (SELECT * FROM ") + sub->name +
                         " " + alias + " WHERE " + alias +
                         ".SNO = " + t1->alias + ".SNO)";
      predicates.push_back(std::move(pred));
      continue;
    }
    const TableInfo* t = (t2 != nullptr && rng_() % 2 == 0) ? t2 : t1;
    predicates.push_back(RandomPredicate(t->alias, *t));
  }
  if (!predicates.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += predicates[i];
    }
  }
  if (grouped) {
    sql += " GROUP BY ";
    for (size_t i = 0; i < proj.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += proj[i];
    }
  }
  return sql;
}

}  // namespace uniqopt
