#include "exec/cost_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "exec/index_exec.h"
#include "expr/equality.h"
#include "expr/normalize.h"

namespace uniqopt {

namespace {

/// Hash/equality for single values under `=!`.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return a.NullSafeEquals(b);
  }
};

double Log2(double x) { return x <= 2 ? 1.0 : std::log2(x); }

}  // namespace

double CostEstimator::DistinctCount(const std::string& table,
                                    size_t column) const {
  auto key = std::make_pair(table, column);
  {
    std::lock_guard<std::mutex> lock(ndv_mu_);
    auto it = ndv_cache_.find(key);
    if (it != ndv_cache_.end()) return it->second;
  }
  // Compute outside the lock: the scan is the expensive part, and a
  // duplicate computation by a racing thread yields the same value.
  double ndv = 1;
  auto t = db_->GetTable(table);
  if (t.ok()) {
    // Scan a pinned snapshot: concurrent DML commits must not move the
    // row storage under this read.
    TableSnapshot snapshot = (*t)->Snapshot();
    std::unordered_set<Value, ValueHash, ValueEq> values;
    for (const Row& row : snapshot->rows) values.insert(row[column]);
    ndv = std::max<size_t>(1, values.size());
  }
  std::lock_guard<std::mutex> lock(ndv_mu_);
  ndv_cache_.emplace(key, ndv);
  return ndv;
}

double CostEstimator::ColumnDistinct(const PlanPtr& plan,
                                     size_t column) const {
  switch (plan->kind()) {
    case PlanKind::kGet:
      return DistinctCount(As<GetNode>(plan)->table().name(), column);
    case PlanKind::kSelect:
    case PlanKind::kExists:
      // Filtering can only reduce distinct counts; keep the upper bound.
      return ColumnDistinct(plan->child(0), column);
    case PlanKind::kProject: {
      const ProjectNode* p = As<ProjectNode>(plan);
      return ColumnDistinct(p->input(), p->columns()[column]);
    }
    case PlanKind::kProduct: {
      const ProductNode* p = As<ProductNode>(plan);
      size_t left_width = p->left()->schema().num_columns();
      return column < left_width
                 ? ColumnDistinct(p->left(), column)
                 : ColumnDistinct(p->right(), column - left_width);
    }
    case PlanKind::kSetOp:
      return ColumnDistinct(As<SetOpNode>(plan)->left(), column);
    case PlanKind::kAggregate: {
      const AggregateNode* agg = As<AggregateNode>(plan);
      if (column < agg->group_columns().size()) {
        return ColumnDistinct(agg->input(), agg->group_columns()[column]);
      }
      return EstimateRows(plan);
    }
  }
  return EstimateRows(plan);
}

double CostEstimator::AtomSelectivity(const ExprPtr& atom,
                                      const PlanPtr& input) const {
  EqualityAtom eq = ClassifyAtom(atom);
  switch (eq.type) {
    case AtomType::kType1ColumnConstant:
      return 1.0 / ColumnDistinct(input, eq.column);
    case AtomType::kType2ColumnColumn: {
      double d = std::max(ColumnDistinct(input, eq.column),
                          ColumnDistinct(input, eq.other_column));
      return 1.0 / std::max(1.0, d);
    }
    case AtomType::kOther:
      break;
  }
  switch (atom->kind()) {
    case ExprKind::kComparison:
      return 1.0 / 3;  // range heuristic
    case ExprKind::kIsNull:
      return 0.1;
    case ExprKind::kIsNotNull:
      return 0.9;
    case ExprKind::kOr: {
      double s = 0;
      for (const ExprPtr& d : atom->children()) {
        s += AtomSelectivity(d, input);
      }
      return std::min(1.0, s);
    }
    case ExprKind::kNot:
      return 1.0 - AtomSelectivity(atom->child(0), input);
    case ExprKind::kLiteral:
      if (atom->IsFalseLiteral()) return 0.0;
      return 1.0;
    default:
      return 0.5;
  }
}

double CostEstimator::Selectivity(const ExprPtr& predicate,
                                  const PlanPtr& input) const {
  double s = 1.0;
  for (const ExprPtr& conj : FlattenAnd(predicate)) {
    s *= AtomSelectivity(conj, input);
  }
  return std::clamp(s, 0.0, 1.0);
}

double CostEstimator::EstimateRows(const PlanPtr& plan) const {
  PhysicalOptions defaults;
  return EstimateNode(plan, defaults).rows;
}

PlanEstimate CostEstimator::Estimate(const PlanPtr& plan,
                                     const PhysicalOptions& options) const {
  PlanEstimate e = EstimateNode(plan, options);
  if (options.dop > 1) {
    // Morsel-driven lowering: work divides across workers, but each
    // worker pays a startup cost and the gather point pays one exchange
    // unit per output row (concatenation / merge of thread-local
    // pre-aggregation). Small plans therefore correctly prefer dop=1.
    constexpr double kWorkerStartup = 250;
    double dop = static_cast<double>(options.dop);
    e.cost = e.cost / dop + kWorkerStartup * dop + e.rows;
  }
  return e;
}

PlanEstimate CostEstimator::EstimateNode(
    const PlanPtr& plan, const PhysicalOptions& options) const {
  switch (plan->kind()) {
    case PlanKind::kGet: {
      PlanEstimate e;
      auto t = db_->GetTable(As<GetNode>(plan)->table().name());
      e.rows = t.ok() ? static_cast<double>((*t)->size()) : 1000;
      e.cost = e.rows;  // full scan
      return e;
    }
    case PlanKind::kSelect: {
      const SelectNode* node = As<SelectNode>(plan);
      if (node->predicate()->IsFalseLiteral()) {
        return PlanEstimate{0, 0};  // EmptySourceOp: input never opened
      }
      // Mirror the planner: a Select over a Product is a join.
      const ProductNode* product = As<ProductNode>(node->input());
      if (product != nullptr) {
        PlanEstimate left = EstimateNode(product->left(), options);
        PlanEstimate right = EstimateNode(product->right(), options);
        double sel = Selectivity(node->predicate(), node->input());
        PlanEstimate e;
        e.rows = std::max(1.0, left.rows * right.rows * sel);
        bool has_equi = false;
        size_t left_width = product->left()->schema().num_columns();
        std::vector<size_t> left_keys;
        std::vector<size_t> right_keys;
        for (const ExprPtr& conj : FlattenAnd(node->predicate())) {
          EqualityAtom a = ClassifyAtom(conj);
          if (a.type == AtomType::kType2ColumnColumn &&
              ((a.column < left_width) != (a.other_column < left_width))) {
            has_equi = true;
            size_t lc = a.column < left_width ? a.column : a.other_column;
            size_t rc = a.column < left_width ? a.other_column : a.column;
            left_keys.push_back(lc);
            right_keys.push_back(rc - left_width);
          }
        }
        if (options.join == PhysicalOptions::JoinStrategy::kHash &&
            has_equi) {
          // Mirror the planner: a bare keyed Get on the build side is
          // probed through its unique index — the build phase (and the
          // build-side scan) disappears. Parallel lowerings (dop > 1)
          // keep the shared hash build.
          const GetNode* right_get = As<GetNode>(product->right());
          if (options.use_indexes && options.dop <= 1 &&
              right_get != nullptr &&
              MatchUniqueIndexJoin(right_get->table(), left_keys,
                                   right_keys)
                  .has_value()) {
            e.cost = left.cost + left.rows + e.rows;
          } else {
            e.cost =
                left.cost + right.cost + left.rows + right.rows + e.rows;
          }
        } else {
          e.cost = left.cost + right.cost + left.rows * right.rows;
        }
        return e;
      }
      // A unique-index point lookup touches one hash bucket: constant
      // cost regardless of table size. This is what makes keyed point
      // queries prefer the probe over every scan-based alternative.
      if (options.use_indexes && options.dop <= 1) {
        const GetNode* get = As<GetNode>(node->input());
        if (get != nullptr &&
            MatchIndexLookup(get->table(), node->predicate())
                .has_value()) {
          return PlanEstimate{1, 2};
        }
      }
      PlanEstimate in = EstimateNode(node->input(), options);
      PlanEstimate e;
      e.rows = std::max(1.0, in.rows * Selectivity(node->predicate(),
                                                   node->input()));
      // Predicate evaluation is paid per conjunct per row — this is what
      // makes the RemoveImpliedPredicate rewrite visibly cheaper.
      double conjuncts =
          static_cast<double>(FlattenAnd(node->predicate()).size());
      e.cost = in.cost + in.rows * 0.1 * std::max(1.0, conjuncts);
      return e;
    }
    case PlanKind::kProject: {
      const ProjectNode* node = As<ProjectNode>(plan);
      PlanEstimate in = EstimateNode(node->input(), options);
      PlanEstimate e;
      if (node->mode() == DuplicateMode::kAll) {
        e.rows = in.rows;
        e.cost = in.cost + in.rows * 0.1;
        return e;
      }
      // Distinct output bounded by the product of column NDVs.
      double distinct = 1;
      for (size_t col : node->columns()) {
        distinct *= ColumnDistinct(node->input(), col);
        if (distinct > in.rows) break;
      }
      e.rows = std::min(in.rows, distinct);
      double dedup =
          options.distinct == PhysicalOptions::DistinctStrategy::kSort
              ? in.rows * Log2(in.rows) * 0.5
              : in.rows;
      e.cost = in.cost + in.rows * 0.1 + dedup;
      return e;
    }
    case PlanKind::kProduct: {
      const ProductNode* node = As<ProductNode>(plan);
      PlanEstimate left = EstimateNode(node->left(), options);
      PlanEstimate right = EstimateNode(node->right(), options);
      PlanEstimate e;
      e.rows = left.rows * right.rows;
      e.cost = left.cost + right.cost + e.rows;
      return e;
    }
    case PlanKind::kExists: {
      const ExistsNode* node = As<ExistsNode>(plan);
      PlanEstimate outer = EstimateNode(node->outer(), options);
      PlanEstimate inner = EstimateNode(node->sub(), options);
      PlanEstimate e;
      e.rows = std::max(1.0, outer.rows * (node->negated() ? 0.25 : 0.75));
      bool has_equi = false;
      size_t outer_width = node->outer()->schema().num_columns();
      for (const ExprPtr& conj : FlattenAnd(node->correlation())) {
        EqualityAtom a = ClassifyAtom(conj);
        if (a.type == AtomType::kType2ColumnColumn &&
            ((a.column < outer_width) != (a.other_column < outer_width))) {
          has_equi = true;
        }
      }
      if (options.join == PhysicalOptions::JoinStrategy::kHash && has_equi) {
        e.cost = outer.cost + inner.cost + inner.rows + outer.rows;
      } else {
        // Nested loops; EXISTS stops at the first witness (halved).
        e.cost = outer.cost + inner.cost + outer.rows * inner.rows * 0.5;
      }
      return e;
    }
    case PlanKind::kSetOp: {
      const SetOpNode* node = As<SetOpNode>(plan);
      PlanEstimate left = EstimateNode(node->left(), options);
      PlanEstimate right = EstimateNode(node->right(), options);
      PlanEstimate e;
      e.rows = node->op() == SetOpAlgebra::kIntersect
                   ? std::min(left.rows, right.rows) * 0.5
                   : left.rows * 0.5;
      if (options.sort_merge_intersect &&
          node->op() == SetOpAlgebra::kIntersect &&
          node->mode() == DuplicateMode::kDist) {
        e.cost = left.cost + right.cost + left.rows * Log2(left.rows) * 0.5 +
                 right.rows * Log2(right.rows) * 0.5;
      } else {
        e.cost = left.cost + right.cost + left.rows + right.rows;
      }
      return e;
    }
    case PlanKind::kAggregate: {
      const AggregateNode* node = As<AggregateNode>(plan);
      PlanEstimate in = EstimateNode(node->input(), options);
      PlanEstimate e;
      double groups = 1;
      for (size_t col : node->group_columns()) {
        groups *= ColumnDistinct(node->input(), col);
        if (groups > in.rows) break;
      }
      e.rows = node->group_columns().empty()
                   ? 1
                   : std::max(1.0, std::min(in.rows, groups));
      e.cost = in.cost + in.rows + e.rows;
      return e;
    }
  }
  return PlanEstimate{1, 1};
}

size_t ChooseBestAlternative(const CostEstimator& estimator,
                             std::vector<PlanAlternative>* alternatives) {
  size_t best = 0;
  for (size_t i = 0; i < alternatives->size(); ++i) {
    PlanAlternative& alt = (*alternatives)[i];
    alt.estimate = estimator.Estimate(alt.plan, alt.physical);
    if (alt.estimate.cost < (*alternatives)[best].estimate.cost) best = i;
  }
  return best;
}

std::vector<PlanAlternative> StandardAlternatives(const PlanPtr& original,
                                                  const PlanPtr& rewritten,
                                                  unsigned dop) {
  std::vector<PlanAlternative> out;
  auto add = [&](const PlanPtr& plan, const char* which) {
    PhysicalOptions hash;
    hash.join = PhysicalOptions::JoinStrategy::kHash;
    hash.distinct = PhysicalOptions::DistinctStrategy::kHash;
    out.push_back({plan, hash, std::string(which) + "/hash", {}});
    PhysicalOptions sort;
    sort.join = PhysicalOptions::JoinStrategy::kHash;
    sort.distinct = PhysicalOptions::DistinctStrategy::kSort;
    out.push_back({plan, sort, std::string(which) + "/sort-distinct", {}});
    PhysicalOptions nl;
    nl.join = PhysicalOptions::JoinStrategy::kNestedLoop;
    out.push_back({plan, nl, std::string(which) + "/nested-loop", {}});
    if (plan->kind() == PlanKind::kSetOp) {
      PhysicalOptions merge = hash;
      merge.sort_merge_intersect = true;
      out.push_back({plan, merge, std::string(which) + "/sort-merge", {}});
    }
    if (dop > 1) {
      PhysicalOptions parallel = hash;
      parallel.dop = dop;
      out.push_back({plan, parallel,
                     std::string(which) + "/parallel-dop" +
                         std::to_string(dop),
                     {}});
    }
  };
  add(original, "original");
  if (rewritten != original) add(rewritten, "rewritten");
  return out;
}

}  // namespace uniqopt
