file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_shell.dir/uniqopt_shell.cc.o"
  "CMakeFiles/uniqopt_shell.dir/uniqopt_shell.cc.o.d"
  "uniqopt_shell"
  "uniqopt_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
