file(REMOVE_RECURSE
  "CMakeFiles/bench_oodb_navigation.dir/bench_oodb_navigation.cc.o"
  "CMakeFiles/bench_oodb_navigation.dir/bench_oodb_navigation.cc.o.d"
  "bench_oodb_navigation"
  "bench_oodb_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oodb_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
