# Empty compiler generated dependencies file for ims_gateway.
# This may be replaced when dependencies are built.
