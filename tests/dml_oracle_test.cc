// Differential DML oracle: a randomized INSERT/UPDATE/DELETE workload
// runs against the transactional plane while a shadow model (plain
// vectors mutated by the same logical operations) tracks the expected
// contents. Afterwards the two must agree row-for-row, every declared
// key must hold by exhaustive scan, every committed index must agree
// with its rows, and the verify sweep + equivalence prover must stay
// clean over 100+ corpus/random queries — DML that keeps the proofs
// honest. An 8-thread reader/writer hammer (also on the TSan list in
// scripts/check.sh) checks that readers only ever observe committed
// snapshots.

#include <atomic>
#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "txn/dml_executor.h"
#include "uniqopt/uniqopt.h"
#include "workload/query_corpus.h"
#include "workload/random_query.h"
#include "workload/supplier_schema.h"

#include "test_util.h"

namespace uniqopt {
namespace {

std::vector<Row> TableRows(const Database& db, const std::string& table) {
  auto t = db.GetTable(table);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return (*t)->Snapshot()->rows;
}

/// Every declared key of every table holds by exhaustive scan, and
/// every committed index agrees with the row storage it covers.
void CheckAllKeysExhaustively(const Database& db) {
  for (const std::string& name : db.catalog().TableNames()) {
    auto t = db.GetTable(name);
    ASSERT_TRUE(t.ok());
    const TableDef& def = (*t)->def();
    TableSnapshot snap = (*t)->Snapshot();
    ASSERT_EQ(snap->indexes.size(), def.keys().size()) << name;
    for (size_t k = 0; k < def.keys().size(); ++k) {
      const KeyConstraint& key = def.keys()[k];
      std::vector<Row> projected;
      projected.reserve(snap->rows.size());
      for (const Row& row : snap->rows) {
        projected.push_back(row.Project(key.columns));
      }
      EXPECT_FALSE(HasDuplicates(projected))
          << name << " key " << key.name << " violated";
      EXPECT_EQ(snap->indexes[k].size(), snap->rows.size()) << name;
      for (size_t i = 0; i < snap->rows.size(); ++i) {
        auto ordinal = snap->indexes[k].Lookup(projected[i]);
        ASSERT_TRUE(ordinal.has_value()) << name << " key " << key.name;
        EXPECT_EQ(*ordinal, i) << name << " key " << key.name;
      }
    }
  }
}

class DmlOracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(CreateSupplierSchema(&db_));
    SupplierDataOptions data;
    data.num_suppliers = 40;
    data.parts_per_supplier = 5;
    data.num_agents = 20;
    ASSERT_OK(PopulateSupplierDatabase(&db_, data));
    supplier_ = TableRows(db_, "SUPPLIER");
    parts_ = TableRows(db_, "PARTS");
  }

  Result<txn::DmlResult> Dml(const std::string& sql) {
    txn::DmlExecutor executor(&db_);
    return executor.ExecuteSql(sql);
  }

  size_t ShadowIndexOf(const std::vector<Row>& rows, int64_t key0,
                       int64_t key1 = -1, bool two = false) {
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i][0].is_null() || rows[i][0].AsInteger() != key0) continue;
      if (two && (rows[i][1].is_null() || rows[i][1].AsInteger() != key1)) {
        continue;
      }
      return i;
    }
    return rows.size();
  }

  Database db_;
  std::vector<Row> supplier_;  // shadow model
  std::vector<Row> parts_;     // shadow model
};

TEST_F(DmlOracleTest, RandomizedWorkloadMatchesShadowModel) {
  std::mt19937_64 rng(20260809);
  const char* kCities[] = {"Chicago", "New York", "Toronto"};
  std::set<int64_t> live_sno;
  for (const Row& r : supplier_) live_sno.insert(r[0].AsInteger());
  std::set<int64_t> inserted_only;  // ours, guaranteed child-free
  int64_t next_sno = 200;
  int64_t next_oem = 50000;
  size_t commits = 0;

  for (int step = 0; step < 300; ++step) {
    switch (rng() % 6) {
      case 0: {  // insert a fresh supplier
        if (next_sno > 490) break;
        int64_t sno = next_sno++;
        const char* city = kCities[rng() % 3];
        double budget = static_cast<double>(1 + rng() % 50) + 0.5;
        char sql[256];
        std::snprintf(sql, sizeof sql,
                      "INSERT INTO SUPPLIER VALUES (%lld, 'W%lld', '%s', "
                      "%.1f, 'Active')",
                      static_cast<long long>(sno),
                      static_cast<long long>(sno), city, budget);
        Status st = Dml(sql).status();
        ASSERT_TRUE(st.ok()) << sql << ": " << st.ToString();
        supplier_.push_back(Row(std::vector<Value>{
            Value::Integer(sno), Value::String("W" + std::to_string(sno)),
            Value::String(city), Value::Double(budget),
            Value::String("Active")}));
        live_sno.insert(sno);
        inserted_only.insert(sno);
        ++commits;
        break;
      }
      case 1: {  // insert a part under a live supplier
        if (live_sno.empty()) break;
        auto it = live_sno.begin();
        std::advance(it, rng() % live_sno.size());
        int64_t sno = *it;
        int64_t pno = 100 + static_cast<int64_t>(rng() % 1000);
        if (ShadowIndexOf(parts_, sno, pno, true) != parts_.size()) break;
        int64_t oem = next_oem++;
        char sql[256];
        std::snprintf(sql, sizeof sql,
                      "INSERT INTO PARTS VALUES (%lld, %lld, 'P%lld', "
                      "%lld, 'RED')",
                      static_cast<long long>(sno),
                      static_cast<long long>(pno),
                      static_cast<long long>(pno),
                      static_cast<long long>(oem));
        Status st = Dml(sql).status();
        ASSERT_TRUE(st.ok()) << sql << ": " << st.ToString();
        parts_.push_back(Row(std::vector<Value>{
            Value::Integer(sno), Value::Integer(pno),
            Value::String("P" + std::to_string(pno)), Value::Integer(oem),
            Value::String("RED")}));
        inserted_only.erase(sno);  // now has a child
        ++commits;
        break;
      }
      case 2: {  // update a live supplier's budget
        if (live_sno.empty()) break;
        auto it = live_sno.begin();
        std::advance(it, rng() % live_sno.size());
        int64_t sno = *it;
        double budget = static_cast<double>(1 + rng() % 90) + 0.5;
        char sql[256];
        std::snprintf(sql, sizeof sql,
                      "UPDATE SUPPLIER SET BUDGET = %.1f WHERE SNO = %lld",
                      budget, static_cast<long long>(sno));
        ASSERT_OK_AND_ASSIGN(txn::DmlResult r, Dml(sql));
        ASSERT_EQ(r.rows_affected, 1u) << sql;
        size_t idx = ShadowIndexOf(supplier_, sno);
        ASSERT_LT(idx, supplier_.size());
        supplier_[idx][3] = Value::Double(budget);
        ++commits;
        break;
      }
      case 3: {  // delete one of our parts
        if (parts_.empty()) break;
        size_t idx = rng() % parts_.size();
        int64_t sno = parts_[idx][0].AsInteger();
        int64_t pno = parts_[idx][1].AsInteger();
        char sql[256];
        std::snprintf(sql, sizeof sql,
                      "DELETE FROM PARTS WHERE SNO = %lld AND PNO = %lld",
                      static_cast<long long>(sno),
                      static_cast<long long>(pno));
        ASSERT_OK_AND_ASSIGN(txn::DmlResult r, Dml(sql));
        ASSERT_EQ(r.rows_affected, 1u) << sql;
        parts_.erase(parts_.begin() + static_cast<ptrdiff_t>(idx));
        ++commits;
        break;
      }
      case 4: {  // delete one of our child-free suppliers
        if (inserted_only.empty()) break;
        auto it = inserted_only.begin();
        std::advance(it, rng() % inserted_only.size());
        int64_t sno = *it;
        char sql[128];
        std::snprintf(sql, sizeof sql,
                      "DELETE FROM SUPPLIER WHERE SNO = %lld",
                      static_cast<long long>(sno));
        ASSERT_OK_AND_ASSIGN(txn::DmlResult r, Dml(sql));
        ASSERT_EQ(r.rows_affected, 1u) << sql;
        size_t idx = ShadowIndexOf(supplier_, sno);
        ASSERT_LT(idx, supplier_.size());
        supplier_.erase(supplier_.begin() + static_cast<ptrdiff_t>(idx));
        inserted_only.erase(sno);
        live_sno.erase(sno);
        break;
      }
      default: {  // violating insert: must roll back and change nothing
        if (live_sno.empty()) break;
        int64_t sno = *live_sno.begin();
        char sql[192];
        std::snprintf(
            sql, sizeof sql,
            "INSERT INTO SUPPLIER VALUES (%lld, 'DUP', 'Toronto', 1.0, "
            "'Active')",
            static_cast<long long>(sno));
        auto r = Dml(sql);
        ASSERT_FALSE(r.ok()) << sql;
        EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
        break;
      }
    }
  }
  ASSERT_GT(commits, 50u);

  // 1. Differential check: committed contents == shadow model.
  EXPECT_TRUE(MultisetEquals(TableRows(db_, "SUPPLIER"), supplier_));
  EXPECT_TRUE(MultisetEquals(TableRows(db_, "PARTS"), parts_));

  // 2. Every declared key holds by exhaustive scan; indexes agree.
  CheckAllKeysExhaustively(db_);

  // 3. Verify sweep + equivalence prover over 100+ queries against the
  // mutated database: the rewrites' uniqueness proofs rest on declared
  // constraints, and DML enforced them — so every plan must still
  // verify clean, and optimized plans must still compute the same rows
  // as the index-free physical baseline.
  Optimizer optimizer(&db_);
  optimizer.set_verify_plans(true);
  size_t verified = 0;
  size_t executed = 0;
  std::vector<std::string> sqls;
  for (const CorpusQuery& q : DistinctQueryCorpus()) sqls.push_back(q.sql);
  RandomQueryOptions qopts;
  qopts.seed = 7;
  RandomQueryGenerator gen(qopts);
  for (int i = 0; i < 120; ++i) sqls.push_back(gen.NextQuery());
  for (const std::string& sql : sqls) {
    auto prepared = optimizer.Prepare(sql);
    if (!prepared.ok()) continue;  // corpus/generator may outrun the schema
    EXPECT_TRUE(prepared->verification.Clean())
        << sql << "\n" << prepared->verification.ToString();
    ++verified;
    if (executed < 30 && prepared->host_vars.empty()) {
      PhysicalOptions no_indexes;
      no_indexes.use_indexes = false;
      auto fast = optimizer.Execute(*prepared);
      auto slow = optimizer.Execute(*prepared, {}, no_indexes);
      ASSERT_TRUE(fast.ok()) << sql;
      ASSERT_TRUE(slow.ok()) << sql;
      EXPECT_TRUE(MultisetEquals(*fast, *slow)) << sql;
      ++executed;
    }
  }
  EXPECT_GE(verified, 100u);
  EXPECT_GE(executed, 20u);
}

// 8-thread hammer: 4 single-writer-per-statement writers against one
// table, 4 readers pinning snapshots mid-flight. Each INSERT statement
// commits two rows for its writer atomically and each DELETE removes
// all of them, so any committed snapshot must show an EVEN per-writer
// row count — a torn (uncommitted or partially applied) version is the
// only way a reader could ever observe an odd one.
TEST(DmlHammerTest, EightThreadsReadersSeeOnlyCommittedSnapshots) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE HAMMER (A INTEGER NOT NULL, W INTEGER, "
      "PRIMARY KEY (A))"));
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kIters = 120;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, &violations, w] {
      txn::DmlExecutor executor(&db);
      int64_t base = 1000000 * (w + 1);
      for (int it = 0; it < kIters; ++it) {
        int64_t a = base + 2 * it;
        char sql[160];
        std::snprintf(sql, sizeof sql,
                      "INSERT INTO HAMMER VALUES (%lld, %d), (%lld, %d)",
                      static_cast<long long>(a), w,
                      static_cast<long long>(a + 1), w);
        if (!executor.ExecuteSql(sql).ok()) violations.fetch_add(1);
        if (it % 5 == 4) {
          std::snprintf(sql, sizeof sql,
                        "DELETE FROM HAMMER WHERE W = %d", w);
          if (!executor.ExecuteSql(sql).ok()) violations.fetch_add(1);
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&db, &done, &violations, r] {
      std::mt19937_64 rng(1000 + r);
      while (!done.load(std::memory_order_acquire)) {
        auto t = db.GetTable("HAMMER");
        if (!t.ok()) {
          violations.fetch_add(1);
          break;
        }
        TableSnapshot snap = (*t)->Snapshot();
        int counts[kWriters] = {0, 0, 0, 0};
        std::set<int64_t> seen;
        for (const Row& row : snap->rows) {
          if (!seen.insert(row[0].AsInteger()).second) {
            violations.fetch_add(1);  // PK duplicate inside a snapshot
          }
          counts[row[1].AsInteger()]++;
        }
        for (int w = 0; w < kWriters; ++w) {
          if (counts[w] % 2 != 0) violations.fetch_add(1);
        }
        if (snap->indexes[0].size() != snap->rows.size()) {
          violations.fetch_add(1);
        }
        // Index-backed point reads race the writers too.
        int64_t probe =
            1000000 * (1 + static_cast<int64_t>(rng() % kWriters)) +
            static_cast<int64_t>(rng() % (2 * kIters));
        char sql[96];
        std::snprintf(sql, sizeof sql,
                      "SELECT A, W FROM HAMMER WHERE A = %lld",
                      static_cast<long long>(probe));
        auto rows = RunSql(db, sql);
        if (!rows.ok() || rows->size() > 1) violations.fetch_add(1);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(violations.load(), 0);
  CheckAllKeysExhaustively(db);
}

}  // namespace
}  // namespace uniqopt
