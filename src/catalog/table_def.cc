#include "catalog/table_def.h"

#include <algorithm>

#include "common/string_util.h"

namespace uniqopt {

Status TableDef::AddKey(KeyKind kind, std::vector<std::string> column_names) {
  if (column_names.empty()) {
    return Status::InvalidArgument("key must name at least one column");
  }
  KeyConstraint key;
  key.kind = kind;
  key.name = (kind == KeyKind::kPrimary ? "pk_" : "uq_") + name_;
  for (const std::string& cn : column_names) {
    UNIQOPT_ASSIGN_OR_RETURN(size_t ord, ColumnOrdinal(cn));
    for (size_t existing : key.columns) {
      if (existing == ord) {
        return Status::InvalidArgument("duplicate column in key: " + cn);
      }
    }
    key.columns.push_back(ord);
    key.name += "_" + ToLowerAscii(cn);
  }
  if (kind == KeyKind::kPrimary) {
    for (const KeyConstraint& k : keys_) {
      if (k.kind == KeyKind::kPrimary) {
        return Status::AlreadyExists("table already has a primary key: " +
                                     name_);
      }
    }
    // PRIMARY KEY columns are implicitly NOT NULL (SQL2 §2.1 of the paper).
    std::vector<Column> cols = schema_.columns();
    for (size_t ord : key.columns) cols[ord].nullable = false;
    schema_ = Schema(std::move(cols));
  }
  keys_.push_back(std::move(key));
  return Status::OK();
}

Status TableDef::SetPrimaryKey(std::vector<std::string> column_names) {
  return AddKey(KeyKind::kPrimary, std::move(column_names));
}

Status TableDef::AddUniqueKey(std::vector<std::string> column_names) {
  return AddKey(KeyKind::kUnique, std::move(column_names));
}

Status TableDef::AddNamedUniqueKey(std::string key_name,
                                   std::vector<std::string> column_names) {
  if (column_names.empty()) {
    return Status::InvalidArgument("key must name at least one column");
  }
  KeyConstraint key;
  key.kind = KeyKind::kUnique;
  key.name = std::move(key_name);
  for (const std::string& cn : column_names) {
    UNIQOPT_ASSIGN_OR_RETURN(size_t ord, ColumnOrdinal(cn));
    for (size_t existing : key.columns) {
      if (existing == ord) {
        return Status::InvalidArgument("duplicate column in key: " + cn);
      }
    }
    key.columns.push_back(ord);
  }
  std::vector<size_t> sorted_new = key.columns;
  std::sort(sorted_new.begin(), sorted_new.end());
  for (const KeyConstraint& k : keys_) {
    if (EqualsIgnoreCase(k.name, key.name)) {
      return Status::AlreadyExists("key name already in use: " + key.name);
    }
    std::vector<size_t> sorted_existing = k.columns;
    std::sort(sorted_existing.begin(), sorted_existing.end());
    if (sorted_existing == sorted_new) {
      return Status::AlreadyExists("a key on these columns already exists: " +
                                   k.name);
    }
  }
  keys_.push_back(std::move(key));
  return Status::OK();
}

Status TableDef::AddForeignKey(std::vector<std::string> column_names,
                               std::string ref_table,
                               std::vector<std::string> ref_columns) {
  if (column_names.empty() || column_names.size() != ref_columns.size()) {
    return Status::InvalidArgument(
        "foreign key must list matching referencing/referenced columns");
  }
  ForeignKeyConstraint fk;
  fk.name = "fk_" + name_;
  for (const std::string& cn : column_names) {
    UNIQOPT_ASSIGN_OR_RETURN(size_t ord, ColumnOrdinal(cn));
    fk.columns.push_back(ord);
    fk.name += "_" + ToLowerAscii(cn);
  }
  fk.ref_table = ToUpperAscii(ref_table);
  fk.ref_columns = std::move(ref_columns);
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

const KeyConstraint* TableDef::primary_key() const {
  for (const KeyConstraint& k : keys_) {
    if (k.kind == KeyKind::kPrimary) return &k;
  }
  return nullptr;
}

Result<size_t> TableDef::ColumnOrdinal(const std::string& column_name) const {
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    if (EqualsIgnoreCase(schema_.column(i).name, column_name)) return i;
  }
  return Status::NotFound("no column " + column_name + " in table " + name_);
}

std::string TableDef::ToString() const {
  std::string out = "TABLE " + name_ + " " + schema_.ToString();
  for (const KeyConstraint& k : keys_) {
    out += k.kind == KeyKind::kPrimary ? "\n  PRIMARY KEY (" : "\n  UNIQUE (";
    for (size_t i = 0; i < k.columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += schema_.column(k.columns[i]).name;
    }
    out += ")";
  }
  for (const ForeignKeyConstraint& fk : foreign_keys_) {
    out += "\n  FOREIGN KEY (";
    for (size_t i = 0; i < fk.columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += schema_.column(fk.columns[i]).name;
    }
    out += ") REFERENCES " + fk.ref_table + " (";
    out += Join(fk.ref_columns, ", ");
    out += ")";
  }
  for (const CheckConstraint& c : checks_) {
    out += "\n  CHECK (";
    out += c.sql_text.empty() ? c.predicate->ToString() : c.sql_text;
    out += ")";
  }
  return out;
}

}  // namespace uniqopt
