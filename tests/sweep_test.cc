// Parameterized invariant sweeps across analyzer configurations and the
// whole workload (corpus + generated queries):
//  - monotonicity: enabling an analyzer ingredient never loses a YES;
//  - idempotence: rewriting a rewritten plan changes nothing;
//  - verdict stability: the analyzer's answer is deterministic and
//    consistent between the Algorithm 1 and combined entry points.

#include <gtest/gtest.h>

#include "analysis/uniqueness.h"
#include "rewrite/rewriter.h"
#include "test_util.h"
#include "workload/query_corpus.h"
#include "workload/random_query.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

class SweepTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_OK(CreateSupplierSchema(&db_));
    SupplierDataOptions data;
    data.num_suppliers = 30;
    data.parts_per_supplier = 5;
    data.num_agents = 15;
    data.null_fraction = 0.1;
    ASSERT_OK(PopulateSupplierDatabase(&db_, data));
  }

  std::vector<PlanPtr> Workload() {
    std::vector<PlanPtr> plans;
    Binder binder(&db_.catalog());
    for (const CorpusQuery& q : DistinctQueryCorpus()) {
      auto bound = binder.BindSql(q.sql);
      EXPECT_TRUE(bound.ok()) << q.id;
      if (bound.ok()) plans.push_back(bound->plan);
    }
    RandomQueryOptions qopts;
    qopts.seed = GetParam();
    qopts.always_distinct = false;
    qopts.group_by_probability = 0.2;
    RandomQueryGenerator gen(qopts);
    for (int i = 0; i < 80; ++i) {
      auto bound = binder.BindSql(gen.NextQuery());
      if (bound.ok()) plans.push_back(bound->plan);
    }
    return plans;
  }

  Database db_;
};

TEST_P(SweepTest, AnalyzerIngredientsAreMonotone) {
  // weaker ⊑ stronger configurations; a YES may never disappear.
  Algorithm1Options weakest;
  weakest.verbatim_line10 = true;
  weakest.bind_constants = false;
  weakest.use_column_equivalence = false;
  weakest.use_unique_keys = false;
  Algorithm1Options mid;
  mid.verbatim_line10 = true;
  Algorithm1Options full;  // extended line 10, everything on
  for (const PlanPtr& plan : Workload()) {
    auto weak = AnalyzeDistinctAlgorithm1(plan, weakest);
    auto medium = AnalyzeDistinctAlgorithm1(plan, mid);
    auto strong = AnalyzeDistinctAlgorithm1(plan, full);
    if (!weak.ok()) continue;  // unsupported shape: all three agree
    ASSERT_TRUE(medium.ok());
    ASSERT_TRUE(strong.ok());
    if (weak->distinct_unnecessary) {
      EXPECT_TRUE(medium->distinct_unnecessary) << plan->ToString();
    }
    if (medium->distinct_unnecessary) {
      EXPECT_TRUE(strong->distinct_unnecessary) << plan->ToString();
    }
    // The FD detector subsumes the strongest Algorithm 1 configuration.
    if (strong->distinct_unnecessary) {
      EXPECT_TRUE(AnalyzeDistinctFd(plan).distinct_unnecessary)
          << plan->ToString();
    }
  }
}

TEST_P(SweepTest, RewriteIsIdempotent) {
  for (const PlanPtr& plan : Workload()) {
    auto once = RewritePlan(plan);
    ASSERT_TRUE(once.ok());
    auto twice = RewritePlan(once->plan);
    ASSERT_TRUE(twice.ok());
    EXPECT_TRUE(twice->applied.empty())
        << "second rewrite pass still fired "
        << RewriteRuleIdToString(twice->applied[0].rule) << " on\n"
        << once->plan->ToString();
    EXPECT_EQ(twice->plan, once->plan);
  }
}

TEST_P(SweepTest, VerdictsAreDeterministic) {
  for (const PlanPtr& plan : Workload()) {
    UniquenessVerdict a = AnalyzeDistinct(plan);
    UniquenessVerdict b = AnalyzeDistinct(plan);
    EXPECT_EQ(a.distinct_unnecessary, b.distinct_unnecessary);
    EXPECT_EQ(a.has_distinct, b.has_distinct);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepTest, ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace uniqopt
