
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fd/attribute_set.cc" "src/fd/CMakeFiles/uniqopt_fd.dir/attribute_set.cc.o" "gcc" "src/fd/CMakeFiles/uniqopt_fd.dir/attribute_set.cc.o.d"
  "/root/repo/src/fd/functional_dependency.cc" "src/fd/CMakeFiles/uniqopt_fd.dir/functional_dependency.cc.o" "gcc" "src/fd/CMakeFiles/uniqopt_fd.dir/functional_dependency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uniqopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
