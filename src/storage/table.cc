#include "storage/table.h"

#include <algorithm>
#include <optional>

#include "common/string_util.h"
#include "parser/parser.h"
#include "plan/binder.h"

namespace uniqopt {

Status Table::Validate(const Row& row) const {
  const Schema& schema = def_->schema();
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table " +
        def_->name() + " arity " + std::to_string(schema.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = schema.column(i);
    const Value& v = row[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return Status::ConstraintViolation("NULL in NOT NULL column " +
                                           col.name + " of " + def_->name());
      }
      continue;
    }
    if (!Value::Comparable(v.type(), col.type)) {
      return Status::TypeMismatch("value " + v.ToString() +
                                  " incompatible with column " + col.name +
                                  " of type " + TypeIdToString(col.type));
    }
  }
  // CHECK constraints are true-interpreted: only FALSE rejects.
  static const std::vector<Value> kNoParams;
  for (const CheckConstraint& check : def_->checks()) {
    Tribool t = check.predicate->EvaluatePredicate(row, kNoParams);
    if (t == Tribool::kFalse) {
      return Status::ConstraintViolation(
          "row " + row.ToString() + " violates CHECK (" +
          (check.sql_text.empty() ? check.predicate->ToString()
                                  : check.sql_text) +
          ") on " + def_->name());
    }
  }
  return Status::OK();
}

bool Table::ContainsKeyValue(size_t key_index, const Row& key_row) const {
  if (key_index >= key_sets_.size()) return false;
  return key_sets_[key_index].count(key_row) > 0;
}

Status Table::ValidateForeignKeys(const Row& row) const {
  if (database_ == nullptr) return Status::OK();
  for (const ForeignKeyConstraint& fk : def_->foreign_keys()) {
    // MATCH SIMPLE: a NULL in any referencing column exempts the row.
    bool any_null = false;
    for (size_t c : fk.columns) any_null = any_null || row[c].is_null();
    if (any_null) continue;

    UNIQOPT_ASSIGN_OR_RETURN(const Table* parent,
                             database_->GetTable(fk.ref_table));
    // Locate the referenced candidate key and its index.
    std::vector<size_t> ref_ordinals;
    for (const std::string& rc : fk.ref_columns) {
      UNIQOPT_ASSIGN_OR_RETURN(size_t ord, parent->def().ColumnOrdinal(rc));
      ref_ordinals.push_back(ord);
    }
    std::optional<size_t> key_index;
    const std::vector<KeyConstraint>& parent_keys = parent->def().keys();
    for (size_t k = 0; k < parent_keys.size(); ++k) {
      std::vector<size_t> a = parent_keys[k].columns;
      std::vector<size_t> b = ref_ordinals;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a == b) {
        key_index = k;
        break;
      }
    }
    if (!key_index.has_value()) {
      return Status::Internal("foreign key " + fk.name +
                              " does not match a key of " + fk.ref_table);
    }
    // Build the probe row in the parent key's column order.
    std::vector<Value> probe;
    for (size_t parent_col : parent_keys[*key_index].columns) {
      size_t j = 0;
      while (ref_ordinals[j] != parent_col) ++j;
      probe.push_back(row[fk.columns[j]]);
    }
    if (!parent->ContainsKeyValue(*key_index, Row(std::move(probe)))) {
      return Status::ConstraintViolation(
          "row " + row.ToString() + " violates " + fk.name +
          ": no matching row in " + fk.ref_table);
    }
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  UNIQOPT_RETURN_NOT_OK(Validate(row));
  UNIQOPT_RETURN_NOT_OK(ValidateForeignKeys(row));
  if (key_sets_.size() != def_->keys().size()) {
    key_sets_.resize(def_->keys().size());
  }
  // Probe all key sets before mutating any.
  std::vector<Row> key_rows;
  key_rows.reserve(def_->keys().size());
  for (size_t k = 0; k < def_->keys().size(); ++k) {
    Row key_row = row.Project(def_->keys()[k].columns);
    if (key_sets_[k].count(key_row) > 0) {
      return Status::ConstraintViolation(
          "duplicate key " + key_row.ToString() + " for " +
          def_->keys()[k].name + " on " + def_->name());
    }
    key_rows.push_back(std::move(key_row));
  }
  for (size_t k = 0; k < key_rows.size(); ++k) {
    key_sets_[k].insert(std::move(key_rows[k]));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::Clear() {
  rows_.clear();
  for (auto& ks : key_sets_) ks.clear();
}

Status Database::CreateTable(TableDef def) {
  UNIQOPT_RETURN_NOT_OK(catalog_.AddTable(std::move(def)));
  // The catalog owns the definition; point the instance at it.
  const std::string name = catalog_.TableNames().back();
  UNIQOPT_ASSIGN_OR_RETURN(const TableDef* stored, catalog_.GetTable(name));
  tables_.push_back(std::make_unique<Table>(stored));
  tables_.back()->SetDatabase(this);
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  std::string key = ToUpperAscii(name);
  // Drop the instance before the definition: the Table points into the
  // catalog-owned TableDef.
  bool found = false;
  for (auto it = tables_.begin(); it != tables_.end(); ++it) {
    if ((*it)->def().name() == key) {
      tables_.erase(it);
      found = true;
      break;
    }
  }
  Status st = catalog_.DropTable(name);
  if (!found && st.ok()) {
    return Status::Internal("table instance missing for " + name);
  }
  return st;
}

Status Database::ExecuteDdl(std::string_view sql) {
  UNIQOPT_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  if (stmt->create_table != nullptr) {
    UNIQOPT_ASSIGN_OR_RETURN(TableDef def,
                             BuildTableDef(*stmt->create_table));
    return CreateTable(std::move(def));
  }
  if (stmt->drop_table != nullptr) {
    return DropTable(stmt->drop_table->table_name);
  }
  return Status::InvalidArgument(
      "expected a CREATE TABLE or DROP TABLE statement");
}

Result<Table*> Database::GetTable(const std::string& name) {
  std::string key = ToUpperAscii(name);
  for (auto& t : tables_) {
    if (t->def().name() == key) return t.get();
  }
  return Status::NotFound("table not found: " + name);
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  std::string key = ToUpperAscii(name);
  for (const auto& t : tables_) {
    if (t->def().name() == key) return t.get();
  }
  return Status::NotFound("table not found: " + name);
}

}  // namespace uniqopt
