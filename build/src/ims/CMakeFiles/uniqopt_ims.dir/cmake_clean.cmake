file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_ims.dir/dli.cc.o"
  "CMakeFiles/uniqopt_ims.dir/dli.cc.o.d"
  "CMakeFiles/uniqopt_ims.dir/gateway.cc.o"
  "CMakeFiles/uniqopt_ims.dir/gateway.cc.o.d"
  "CMakeFiles/uniqopt_ims.dir/ims_database.cc.o"
  "CMakeFiles/uniqopt_ims.dir/ims_database.cc.o.d"
  "CMakeFiles/uniqopt_ims.dir/translator.cc.o"
  "CMakeFiles/uniqopt_ims.dir/translator.cc.o.d"
  "libuniqopt_ims.a"
  "libuniqopt_ims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_ims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
