#ifndef UNIQOPT_INDEX_UNIQUE_INDEX_H_
#define UNIQOPT_INDEX_UNIQUE_INDEX_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "types/row.h"

namespace uniqopt {

/// A unique hash index over one declared key of a table version.
///
/// Keys are projected key rows compared under the paper's null-equality
/// operator `=!` (§2.1): NULL is one special value, so at most one row
/// may carry NULL in any key column position. This matches the SQL2
/// UNIQUE semantics Table enforcement has always used, which is what
/// lets the optimizer treat a declared key as a key dependency
/// (Theorem 1) — and what lets the executor treat the index itself as a
/// pre-built hash-join table.
///
/// The index is a value type owned by an immutable TableVersion: DML
/// builds a fresh index for the next version and publishes both
/// together, so readers never observe an index out of sync with rows.
class UniqueIndex {
 public:
  UniqueIndex() = default;
  explicit UniqueIndex(std::vector<size_t> key_columns)
      : key_columns_(std::move(key_columns)) {}

  const std::vector<size_t>& key_columns() const { return key_columns_; }
  size_t size() const { return map_.size(); }

  /// Inserts the key projection of `row` (stored at position `ordinal`).
  /// A `=!`-duplicate key yields ConstraintViolation naming `key_name`.
  Status Insert(const Row& row, size_t ordinal, const std::string& key_name,
                const std::string& table_name);

  /// Position of the row whose key is `=!`-equal to `key`, if any. The
  /// key must be projected in key_columns() order. Callers implementing
  /// SQL `=` probes (WHERE col = :v, join keys) must short-circuit NULL
  /// probe values to "no match" before calling — the index itself files
  /// NULL as an ordinary value.
  std::optional<size_t> Lookup(const Row& key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(const Row& key) const { return Lookup(key).has_value(); }

  /// Builds an index over `rows` for the given key columns; the first
  /// `=!`-duplicate pair aborts the build with ConstraintViolation.
  /// Used both to maintain indexes across DML versions and to validate
  /// existing rows when CREATE UNIQUE INDEX declares a key after the
  /// fact.
  static Result<UniqueIndex> Build(const std::vector<Row>& rows,
                                   std::vector<size_t> key_columns,
                                   const std::string& key_name,
                                   const std::string& table_name);

 private:
  std::vector<size_t> key_columns_;
  std::unordered_map<Row, size_t, RowHash, RowNullSafeEqual> map_;
};

}  // namespace uniqopt

#endif  // UNIQOPT_INDEX_UNIQUE_INDEX_H_
