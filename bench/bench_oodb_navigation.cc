// Experiment X9 (§6.2, Example 11): child-driven vs parent-driven
// navigation in the object database, swept over the selectivity of the
// parent (SNO range) predicate.
//
// The benchmark argument is the range width as a percent of the supplier
// population. Counters expose the navigation work (pointer derefs,
// object retrievals, header peeks); `io_cost` is the weighted summary.
//
// Expected shape (paper: "depending on the objects' selectivity"):
// parent-driven wins at low selectivity (it never faults a discarded
// parent), child-driven wins when the range keeps most suppliers; the
// crossover sits in between.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "oodb/navigator.h"

namespace uniqopt {
namespace bench {
namespace {

constexpr size_t kSuppliers = 2000;
constexpr size_t kPartsPerSupplier = 10;
constexpr int64_t kPartNo = 6;

const oodb::ObjectStore& GetStore() {
  static const oodb::ObjectStore* store = [] {
    auto built = oodb::BuildSupplierObjectStore(
        GetSupplierDb(kSuppliers, kPartsPerSupplier));
    UNIQOPT_DCHECK_MSG(built.ok(), built.status().ToString().c_str());
    return built->release();
  }();
  return *store;
}

void Report(benchmark::State& state, const oodb::StrategyResult& result) {
  state.counters["rows"] = static_cast<double>(result.rows.size());
  state.counters["derefs"] =
      static_cast<double>(result.stats.pointer_derefs);
  state.counters["retrieved"] =
      static_cast<double>(result.stats.objects_retrieved);
  state.counters["peeks"] = static_cast<double>(result.stats.header_peeks);
  state.counters["io_cost"] = result.stats.EstimatedIoCost();
}

int64_t RangeHi(int64_t percent) {
  int64_t hi = static_cast<int64_t>(kSuppliers) * percent / 100;
  return hi < 1 ? 1 : hi;
}

void BM_ChildDriven(benchmark::State& state) {
  const auto& store = GetStore();
  int64_t hi = RangeHi(state.range(0));
  oodb::StrategyResult result;
  for (auto _ : state) {
    result = oodb::ChildDrivenSuppliersForPart(store, kPartNo, 1, hi);
    benchmark::DoNotOptimize(result.rows.size());
  }
  Report(state, result);
}
BENCHMARK(BM_ChildDriven)->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100);

void BM_ParentDriven(benchmark::State& state) {
  const auto& store = GetStore();
  int64_t hi = RangeHi(state.range(0));
  oodb::StrategyResult result;
  for (auto _ : state) {
    result = oodb::ParentDrivenSuppliersForPart(store, kPartNo, 1, hi);
    benchmark::DoNotOptimize(result.rows.size());
  }
  Report(state, result);
}
BENCHMARK(BM_ParentDriven)->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100);

}  // namespace
}  // namespace bench
}  // namespace uniqopt

UNIQOPT_BENCH_MAIN();
