#include "rewrite/rewriter.h"

#include <map>

#include "analysis/implication.h"
#include "analysis/near_miss.h"
#include "analysis/properties.h"
#include "analysis/subquery.h"
#include "analysis/uniqueness.h"
#include "expr/equality.h"
#include "expr/normalize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniqopt {

const char* RewriteRuleIdToString(RewriteRuleId id) {
  switch (id) {
    case RewriteRuleId::kRemoveRedundantDistinct:
      return "RemoveRedundantDistinct";
    case RewriteRuleId::kSubqueryToJoin:
      return "SubqueryToJoin";
    case RewriteRuleId::kSubqueryToDistinctJoin:
      return "SubqueryToDistinctJoin";
    case RewriteRuleId::kIntersectToExists:
      return "IntersectToExists";
    case RewriteRuleId::kIntersectAllToExists:
      return "IntersectAllToExists";
    case RewriteRuleId::kExceptToNotExists:
      return "ExceptToNotExists";
    case RewriteRuleId::kJoinToSubquery:
      return "JoinToSubquery";
    case RewriteRuleId::kJoinElimination:
      return "JoinElimination";
    case RewriteRuleId::kRemoveImpliedPredicate:
      return "RemoveImpliedPredicate";
    case RewriteRuleId::kDetectEmptyResult:
      return "DetectEmptyResult";
    case RewriteRuleId::kEliminateGroupByOnKey:
      return "EliminateGroupByOnKey";
    case RewriteRuleId::kExistsToIntersect:
      return "ExistsToIntersect";
  }
  return "?";
}

ExprPtr MakeNullSafeCorrelation(const Schema& left, const Schema& right) {
  std::vector<ExprPtr> conjuncts;
  for (size_t i = 0; i < left.num_columns(); ++i) {
    const Column& lc = left.column(i);
    const Column& rc = right.column(i);
    ExprPtr l =
        Expr::ColumnRef(i, lc.QualifiedName(), lc.type, lc.nullable);
    ExprPtr r = Expr::ColumnRef(left.num_columns() + i, rc.QualifiedName(),
                                rc.type, rc.nullable);
    ExprPtr eq = Expr::Compare(CompareOp::kEq, l, r);
    if (!lc.nullable && !rc.nullable) {
      // Footnote 1: a NOT NULL column needs no IS NULL test.
      conjuncts.push_back(std::move(eq));
      continue;
    }
    ExprPtr both_null =
        Expr::MakeAnd({Expr::IsNull(l), Expr::IsNull(r)});
    conjuncts.push_back(Expr::MakeOr({std::move(both_null), std::move(eq)}));
  }
  return Expr::MakeAnd(std::move(conjuncts));
}

namespace {

class Rewriter {
 public:
  explicit Rewriter(const RewriteOptions& options) : options_(options) {}

  Result<PlanPtr> Transform(const PlanPtr& node) {
    UNIQOPT_ASSIGN_OR_RETURN(PlanPtr current, TransformChildren(node));
    for (int i = 0; i < options_.max_iterations_per_node; ++i) {
      UNIQOPT_ASSIGN_OR_RETURN(PlanPtr next, ApplyRulesAt(current));
      if (next == current) break;
      current = std::move(next);
    }
    return current;
  }

  std::vector<AppliedRewrite> TakeApplied() { return std::move(applied_); }
  std::vector<obs::NearMiss> TakeNearMisses() {
    return std::move(near_misses_);
  }

 private:
  bool CollectingNearMisses() const {
    return options_.analysis.collect_near_misses;
  }

  void Harvest(std::vector<obs::NearMiss> misses) {
    for (obs::NearMiss& miss : misses) {
      near_misses_.push_back(std::move(miss));
    }
  }
  Result<PlanPtr> TransformChildren(const PlanPtr& node) {
    switch (node->kind()) {
      case PlanKind::kGet:
        return node;
      case PlanKind::kSelect: {
        const SelectNode& n = *As<SelectNode>(node);
        UNIQOPT_ASSIGN_OR_RETURN(PlanPtr input, Transform(n.input()));
        if (input == n.input()) return node;
        return SelectNode::Make(std::move(input), n.predicate());
      }
      case PlanKind::kProject: {
        const ProjectNode& n = *As<ProjectNode>(node);
        UNIQOPT_ASSIGN_OR_RETURN(PlanPtr input, Transform(n.input()));
        if (input == n.input()) return node;
        return ProjectNode::Make(std::move(input), n.mode(), n.columns());
      }
      case PlanKind::kProduct: {
        const ProductNode& n = *As<ProductNode>(node);
        UNIQOPT_ASSIGN_OR_RETURN(PlanPtr left, Transform(n.left()));
        UNIQOPT_ASSIGN_OR_RETURN(PlanPtr right, Transform(n.right()));
        if (left == n.left() && right == n.right()) return node;
        return ProductNode::Make(std::move(left), std::move(right));
      }
      case PlanKind::kExists: {
        const ExistsNode& n = *As<ExistsNode>(node);
        UNIQOPT_ASSIGN_OR_RETURN(PlanPtr outer, Transform(n.outer()));
        UNIQOPT_ASSIGN_OR_RETURN(PlanPtr sub, Transform(n.sub()));
        if (outer == n.outer() && sub == n.sub()) return node;
        return ExistsNode::Make(std::move(outer), std::move(sub),
                                n.correlation(), n.negated());
      }
      case PlanKind::kSetOp: {
        const SetOpNode& n = *As<SetOpNode>(node);
        UNIQOPT_ASSIGN_OR_RETURN(PlanPtr left, Transform(n.left()));
        UNIQOPT_ASSIGN_OR_RETURN(PlanPtr right, Transform(n.right()));
        if (left == n.left() && right == n.right()) return node;
        return SetOpNode::Make(n.op(), n.mode(), std::move(left),
                               std::move(right));
      }
      case PlanKind::kAggregate: {
        const AggregateNode& n = *As<AggregateNode>(node);
        UNIQOPT_ASSIGN_OR_RETURN(PlanPtr input, Transform(n.input()));
        if (input == n.input()) return node;
        return AggregateNode::Make(std::move(input), n.group_columns(),
                                   n.aggregates());
      }
    }
    return Status::Internal("unhandled plan kind in rewriter");
  }

  Result<PlanPtr> ApplyRulesAt(const PlanPtr& node) {
    // Set-op rewrites run before DISTINCT removal so that Theorem 3 /
    // Corollary 2 get credited on ∩_Dist nodes (removal would first turn
    // them into ∩_All, which Corollary 2 then converts anyway).
    if (options_.intersect_to_exists || options_.intersect_all_to_exists ||
        options_.except_to_not_exists) {
      UNIQOPT_ASSIGN_OR_RETURN(PlanPtr next, TrySetOpToExists(node));
      if (next != node) return next;
    }
    if (options_.remove_redundant_distinct) {
      UNIQOPT_ASSIGN_OR_RETURN(PlanPtr next, TryRemoveDistinct(node));
      if (next != node) return next;
    }
    if (options_.subquery_to_join || options_.subquery_to_distinct_join ||
        options_.starburst_always_join) {
      UNIQOPT_ASSIGN_OR_RETURN(PlanPtr next, TrySubqueryToJoin(node));
      if (next != node) return next;
    }
    if (options_.join_elimination) {
      UNIQOPT_ASSIGN_OR_RETURN(PlanPtr next, TryJoinElimination(node));
      if (next != node) return next;
    }
    if (options_.join_to_subquery) {
      UNIQOPT_ASSIGN_OR_RETURN(PlanPtr next, TryJoinToSubquery(node));
      if (next != node) return next;
    }
    if (options_.semantic_predicates) {
      UNIQOPT_ASSIGN_OR_RETURN(PlanPtr next, TrySemanticPredicates(node));
      if (next != node) return next;
    }
    if (options_.group_by_elimination) {
      UNIQOPT_ASSIGN_OR_RETURN(PlanPtr next, TryEliminateGroupBy(node));
      if (next != node) return next;
    }
    if (options_.exists_to_intersect) {
      UNIQOPT_ASSIGN_OR_RETURN(PlanPtr next, TryExistsToIntersect(node));
      if (next != node) return next;
    }
    return node;
  }

  // Per-rule registry counters: rewrite.rule.<RuleName>.considered is
  // bumped when a rule's structural precondition matched and the gating
  // analysis ran, .fired when it transformed the plan, .rejected when the
  // uniqueness condition (or another semantic gate) failed.
  static obs::Counter& RuleCounter(RewriteRuleId rule, const char* outcome) {
    return obs::MetricsRegistry::Global().GetCounter(
        std::string("rewrite.rule.") + RewriteRuleIdToString(rule) + "." +
        outcome);
  }
  static void Considered(RewriteRuleId rule) {
    RuleCounter(rule, "considered").Increment();
  }
  static void Rejected(RewriteRuleId rule) {
    RuleCounter(rule, "rejected").Increment();
  }

  void Record(RewriteRuleId rule, std::string description,
              RewriteEvidence evidence) {
    RuleCounter(rule, "fired").Increment();
    evidence.condition_proven = true;
    applied_.push_back({rule, std::move(description), std::move(evidence)});
  }

  // §5.1: π_Dist → π_All; ∩/−_Dist → ∩/−_All.
  Result<PlanPtr> TryRemoveDistinct(const PlanPtr& node) {
    if (const ProjectNode* p = As<ProjectNode>(node);
        p != nullptr && p->mode() == DuplicateMode::kDist) {
      Considered(RewriteRuleId::kRemoveRedundantDistinct);
      obs::Span span("rewrite.rule.RemoveRedundantDistinct");
      UniquenessVerdict verdict = AnalyzeDistinct(node, options_.analysis);
      span.AddAttr("distinct_unnecessary", verdict.distinct_unnecessary);
      span.AddAttr("detector", verdict.detector == DetectorKind::kAlgorithm1
                                   ? "algorithm1"
                                   : "fd_propagation");
      if (verdict.distinct_unnecessary) {
        PlanPtr after =
            ProjectNode::Make(p->input(), DuplicateMode::kAll, p->columns());
        RewriteEvidence evidence;
        evidence.before = node;
        evidence.after = after;
        evidence.proof = std::move(verdict.proof);
        evidence.facts = std::move(verdict.trace);
        Record(RewriteRuleId::kRemoveRedundantDistinct,
               "DISTINCT removed (uniqueness condition holds)",
               std::move(evidence));
        return after;
      }
      Rejected(RewriteRuleId::kRemoveRedundantDistinct);
      if (CollectingNearMisses()) {
        Harvest(std::move(verdict.near_misses));
      }
      return node;
    }
    if (const SetOpNode* s = As<SetOpNode>(node);
        s != nullptr && s->mode() == DuplicateMode::kDist) {
      Considered(RewriteRuleId::kRemoveRedundantDistinct);
      obs::Span span("rewrite.rule.RemoveRedundantDistinct");
      DerivedProperties left = DeriveProperties(s->left(), options_.analysis);
      DerivedProperties right =
          DeriveProperties(s->right(), options_.analysis);
      bool equivalent =
          s->op() == SetOpAlgebra::kIntersect
              ? (left.IsDuplicateFree() || right.IsDuplicateFree())
              : left.IsDuplicateFree();
      span.AddAttr("distinct_unnecessary", equivalent);
      if (equivalent) {
        Result<PlanPtr> after = SetOpNode::Make(s->op(), DuplicateMode::kAll,
                                                s->left(), s->right());
        if (!after.ok()) return after;
        RewriteEvidence evidence;
        evidence.before = node;
        evidence.after = *after;
        evidence.facts = {"left operand: " + left.ToString(),
                          "right operand: " + right.ToString()};
        Record(RewriteRuleId::kRemoveRedundantDistinct,
               "set-op DISTINCT ≡ ALL (operand duplicate-free)",
               std::move(evidence));
        return *after;
      }
      Rejected(RewriteRuleId::kRemoveRedundantDistinct);
      if (CollectingNearMisses()) {
        Harvest(CollectSpecNearMisses(s->left(), "theorem3.setop",
                                      options_.analysis));
        Harvest(CollectSpecNearMisses(s->right(), "theorem3.setop",
                                      options_.analysis));
      }
    }
    return node;
  }

  // §5.2: π_d[A](Exists(outer, inner)) → π_d'[A](σ[corr](outer × inner)).
  Result<PlanPtr> TrySubqueryToJoin(const PlanPtr& node) {
    const ProjectNode* project = As<ProjectNode>(node);
    if (project == nullptr) return node;
    const ExistsNode* exists = As<ExistsNode>(project->input());
    if (exists == nullptr || exists->negated()) return node;

    auto rebuild_as_join = [&](DuplicateMode mode) -> PlanPtr {
      PlanPtr product = ProductNode::Make(exists->outer(), exists->sub());
      PlanPtr select = SelectNode::Make(product, exists->correlation());
      return ProjectNode::Make(std::move(select), mode, project->columns());
    };

    // Theorem 2: at most one inner match ⇒ plain join, mode preserved.
    if (options_.subquery_to_join) {
      Considered(RewriteRuleId::kSubqueryToJoin);
      obs::Span span("rewrite.rule.SubqueryToJoin");
      Result<SubqueryVerdict> verdict =
          TestSubqueryAtMostOneMatch(*exists, options_.analysis);
      span.AddAttr("at_most_one_match",
                   verdict.ok() && verdict->at_most_one_match);
      if (verdict.ok() && verdict->at_most_one_match) {
        PlanPtr after = rebuild_as_join(project->mode());
        RewriteEvidence evidence;
        evidence.before = node;  // full π(EXISTS) subtree, matching `after`
        evidence.after = after;
        evidence.proof = std::move(verdict->proof);
        evidence.facts = std::move(verdict->trace);
        Record(RewriteRuleId::kSubqueryToJoin,
               "EXISTS converted to join (Theorem 2: inner key bound)",
               std::move(evidence));
        return after;
      }
      Rejected(RewriteRuleId::kSubqueryToJoin);
      if (verdict.ok() && CollectingNearMisses()) {
        Harvest(std::move(verdict->near_misses));
      }
    }
    // Already-DISTINCT projection: the Dist/Dist equivalence noted after
    // Theorem 2 always allows the conversion.
    if ((options_.subquery_to_distinct_join ||
         options_.starburst_always_join) &&
        project->mode() == DuplicateMode::kDist) {
      Considered(RewriteRuleId::kSubqueryToDistinctJoin);
      PlanPtr after = rebuild_as_join(DuplicateMode::kDist);
      RewriteEvidence evidence;
      evidence.before = node;
      evidence.after = after;
      evidence.facts = {
          "projection is DISTINCT: the Dist/Dist equivalence after "
          "Theorem 2 holds unconditionally"};
      Record(RewriteRuleId::kSubqueryToDistinctJoin,
             "EXISTS under π_Dist converted to join", std::move(evidence));
      return after;
    }
    // Corollary 1: outer block duplicate-free ⇒ DISTINCT join.
    if (options_.subquery_to_distinct_join &&
        project->mode() == DuplicateMode::kAll) {
      Considered(RewriteRuleId::kSubqueryToDistinctJoin);
      obs::Span span("rewrite.rule.SubqueryToDistinctJoin");
      PlanPtr outer_projection = ProjectNode::Make(
          exists->outer(), DuplicateMode::kAll, project->columns());
      bool outer_unique =
          IsProvablyDuplicateFree(outer_projection, options_.analysis);
      span.AddAttr("outer_duplicate_free", outer_unique);
      if (outer_unique) {
        PlanPtr after = rebuild_as_join(DuplicateMode::kDist);
        RewriteEvidence evidence;
        evidence.before = node;
        evidence.after = after;
        evidence.facts = {
            "outer projection duplicate-free (Corollary 1): " +
            DeriveProperties(outer_projection, options_.analysis).ToString()};
        Record(RewriteRuleId::kSubqueryToDistinctJoin,
               "EXISTS converted to DISTINCT join (Corollary 1: outer "
               "duplicate-free)",
               std::move(evidence));
        return after;
      }
      Rejected(RewriteRuleId::kSubqueryToDistinctJoin);
      if (CollectingNearMisses()) {
        Harvest(CollectSpecNearMisses(outer_projection, "corollary1.outer",
                                      options_.analysis));
      }
    }
    // Starburst baseline: force the conversion via a DISTINCT join even
    // without a uniqueness proof (always sound for ALL-mode outer blocks
    // only when the outer is duplicate-free — so the baseline converts
    // π_Dist blocks unconditionally and leaves π_All blocks with a proof
    // obligation it cannot discharge; mirrored from Rule 7 discussion).
    return node;
  }

  // §5.3: set operations → existential subqueries.
  Result<PlanPtr> TrySetOpToExists(const PlanPtr& node) {
    const SetOpNode* setop = As<SetOpNode>(node);
    if (setop == nullptr) return node;
    DerivedProperties left = DeriveProperties(setop->left(), options_.analysis);
    DerivedProperties right =
        DeriveProperties(setop->right(), options_.analysis);

    if (setop->op() == SetOpAlgebra::kIntersect) {
      bool enabled = setop->mode() == DuplicateMode::kDist
                         ? options_.intersect_to_exists
                         : options_.intersect_all_to_exists;
      if (!enabled) return node;
      RewriteRuleId rule = setop->mode() == DuplicateMode::kDist
                               ? RewriteRuleId::kIntersectToExists
                               : RewriteRuleId::kIntersectAllToExists;
      Considered(rule);
      obs::Span span("rewrite.rule.IntersectToExists");
      span.AddAttr("left_duplicate_free", left.IsDuplicateFree());
      span.AddAttr("right_duplicate_free", right.IsDuplicateFree());
      const char* what = setop->mode() == DuplicateMode::kDist
                             ? "INTERSECT (Theorem 3)"
                             : "INTERSECT ALL (Corollary 2)";
      if (left.IsDuplicateFree()) {
        ExprPtr corr = MakeNullSafeCorrelation(setop->left()->schema(),
                                               setop->right()->schema());
        PlanPtr after = ExistsNode::Make(setop->left(), setop->right(),
                                         std::move(corr), /*negated=*/false);
        RewriteEvidence evidence;
        evidence.before = node;
        evidence.after = after;
        evidence.facts = {"left operand duplicate-free (Theorem 3): " +
                          left.ToString()};
        Record(rule,
               std::string(what) + " converted to EXISTS (left operand "
                                   "duplicate-free)",
               std::move(evidence));
        return after;
      }
      if (right.IsDuplicateFree()) {
        ExprPtr corr = MakeNullSafeCorrelation(setop->right()->schema(),
                                               setop->left()->schema());
        PlanPtr after = ExistsNode::Make(setop->right(), setop->left(),
                                         std::move(corr), /*negated=*/false);
        RewriteEvidence evidence;
        evidence.before = node;
        evidence.after = after;
        evidence.facts = {"right operand duplicate-free (Theorem 3): " +
                          right.ToString()};
        Record(rule,
               std::string(what) + " converted to EXISTS (right operand "
                                   "duplicate-free; operands swapped)",
               std::move(evidence));
        return after;
      }
      Rejected(rule);
      if (CollectingNearMisses()) {
        Harvest(CollectSpecNearMisses(setop->left(), "theorem3.setop",
                                      options_.analysis));
        Harvest(CollectSpecNearMisses(setop->right(), "theorem3.setop",
                                      options_.analysis));
      }
      return node;
    }

    // EXCEPT [ALL] → NOT EXISTS when the left operand is duplicate-free.
    if (!options_.except_to_not_exists) return node;
    Considered(RewriteRuleId::kExceptToNotExists);
    if (left.IsDuplicateFree()) {
      ExprPtr corr = MakeNullSafeCorrelation(setop->left()->schema(),
                                             setop->right()->schema());
      PlanPtr after = ExistsNode::Make(setop->left(), setop->right(),
                                       std::move(corr), /*negated=*/true);
      RewriteEvidence evidence;
      evidence.before = node;
      evidence.after = after;
      evidence.facts = {"left operand duplicate-free: " + left.ToString()};
      Record(RewriteRuleId::kExceptToNotExists,
             "EXCEPT converted to NOT EXISTS (left operand duplicate-free)",
             std::move(evidence));
      return after;
    }
    Rejected(RewriteRuleId::kExceptToNotExists);
    return node;
  }

  // §5.3 converse: Exists(L, R, null-safe column equality) → L ∩ R when
  // L is duplicate-free (then ∩_Dist ≡ the EXISTS filter exactly).
  Result<PlanPtr> TryExistsToIntersect(const PlanPtr& node) {
    const ExistsNode* exists = As<ExistsNode>(node);
    if (exists == nullptr || exists->negated()) return node;
    const Schema& left = exists->outer()->schema();
    const Schema& right = exists->sub()->schema();
    if (!left.UnionCompatible(right)) return node;
    // The correlation must be exactly the null-safe tuple equality.
    ExprPtr expected = MakeNullSafeCorrelation(left, right);
    if (!exists->correlation()->Equals(*expected)) return node;
    Considered(RewriteRuleId::kExistsToIntersect);
    if (!IsProvablyDuplicateFree(exists->outer(), options_.analysis)) {
      Rejected(RewriteRuleId::kExistsToIntersect);
      return node;
    }
    Result<PlanPtr> setop =
        SetOpNode::Make(SetOpAlgebra::kIntersect, DuplicateMode::kDist,
                        exists->outer(), exists->sub());
    if (!setop.ok()) return node;
    RewriteEvidence evidence;
    evidence.before = node;
    evidence.after = *setop;
    evidence.facts = {
        "outer block duplicate-free: " +
            DeriveProperties(exists->outer(), options_.analysis).ToString(),
        "correlation is the exact null-safe tuple equality"};
    Record(RewriteRuleId::kExistsToIntersect,
           "null-safe EXISTS converted to INTERSECT (outer "
           "duplicate-free)",
           std::move(evidence));
    return *setop;
  }

  // GROUP BY extension: an aggregation whose group columns cover a
  // derived key of the input has exactly one row per group; SUM/MIN/MAX
  // of a single row equal the row's value, so the whole node collapses
  // into a projection. (COUNT and AVG change value or type and are
  // excluded.)
  Result<PlanPtr> TryEliminateGroupBy(const PlanPtr& node) {
    const AggregateNode* agg = As<AggregateNode>(node);
    if (agg == nullptr || agg->group_columns().empty()) return node;
    for (const AggregateItem& item : agg->aggregates()) {
      if (item.func != AggFunc::kSum && item.func != AggFunc::kMin &&
          item.func != AggFunc::kMax) {
        return node;
      }
    }
    Considered(RewriteRuleId::kEliminateGroupByOnKey);
    DerivedProperties props =
        DeriveProperties(agg->input(), options_.analysis);
    AttributeSet group_set =
        AttributeSet::FromVector(agg->group_columns());
    AttributeSet closure = props.fds.Closure(group_set);
    bool covers_key = false;
    for (const AttributeSet& key : props.keys) {
      covers_key = covers_key || key.IsSubsetOf(closure);
    }
    if (!covers_key) {
      Rejected(RewriteRuleId::kEliminateGroupByOnKey);
      if (CollectingNearMisses()) {
        Result<SpecShape> shape = ExtractProductShape(agg->input());
        if (shape.ok()) {
          Harvest(CollectShapeNearMisses(*shape, group_set, "groupby.on_key",
                                         options_.analysis));
        }
      }
      return node;
    }
    std::vector<size_t> columns = agg->group_columns();
    for (const AggregateItem& item : agg->aggregates()) {
      columns.push_back(item.arg_column);
    }
    PlanPtr after = ProjectNode::Make(agg->input(), DuplicateMode::kAll,
                                      std::move(columns));
    RewriteEvidence evidence;
    evidence.before = node;
    evidence.after = after;
    evidence.facts = {"group-column closure " + closure.ToString() +
                      " covers a derived key of the input: " +
                      props.ToString()};
    Record(RewriteRuleId::kEliminateGroupByOnKey,
           "GROUP BY on a key: single-row groups, aggregation replaced "
           "by projection",
           std::move(evidence));
    return after;
  }

  // §7 extension: simplify the conjuncts of a selection against the
  // CHECK constraints of the base tables below it ("true-interpreted
  // predicate" transformations). Implied conjuncts on NOT NULL columns
  // are dropped; a contradicted conjunct collapses the selection to
  // FALSE (the executor then skips the input entirely).
  Result<PlanPtr> TrySemanticPredicates(const PlanPtr& node) {
    const SelectNode* select = As<SelectNode>(node);
    if (select == nullptr) return node;
    if (select->predicate()->IsFalseLiteral()) return node;  // already done
    Result<SpecShape> shape_result = ExtractProductShape(select->input());
    if (!shape_result.ok()) return node;
    Considered(RewriteRuleId::kRemoveImpliedPredicate);
    const SpecShape& shape = *shape_result;
    const Schema& schema = select->input()->schema();

    // Locate the owning base table of a product column.
    auto owner = [&](size_t col) -> const SpecShape::BaseTable* {
      for (const SpecShape::BaseTable& bt : shape.tables) {
        size_t w = bt.get->schema().num_columns();
        if (col >= bt.offset && col < bt.offset + w) return &bt;
      }
      return nullptr;
    };
    // Per-table domain cache.
    std::map<const TableDef*, ColumnDomains> domains;
    auto domain_of = [&](const SpecShape::BaseTable& bt,
                         size_t ordinal) -> const ValueDomain& {
      const TableDef* def = &bt.get->table();
      auto it = domains.find(def);
      if (it == domains.end()) {
        it = domains.emplace(def, ColumnDomains::FromTable(*def)).first;
      }
      return it->second.domain(ordinal);
    };

    bool changed = false;
    bool contradiction = false;
    std::vector<ExprPtr> kept;
    for (const ExprPtr& conj : FlattenAnd(select->predicate())) {
      AtomVerdict verdict = AtomVerdict::kUnknown;
      bool column_not_null = false;
      size_t col = 0;
      CompareOp op = CompareOp::kEq;
      Value constant;
      std::vector<Value> in_list;
      if (MatchColumnConstant(conj, &col, &op, &constant)) {
        const SpecShape::BaseTable* bt = owner(col);
        if (bt != nullptr) {
          verdict = TestAtomAgainstDomain(domain_of(*bt, col - bt->offset),
                                          op, constant);
          column_not_null = !schema.column(col).nullable;
        }
      } else if (MatchColumnInList(conj, &col, &in_list)) {
        const SpecShape::BaseTable* bt = owner(col);
        if (bt != nullptr) {
          const ValueDomain& d = domain_of(*bt, col - bt->offset);
          // Contradicted iff every listed value is impossible; implied
          // iff the (finite) domain is a subset of the list.
          bool all_contradicted = !in_list.empty();
          for (const Value& v : in_list) {
            all_contradicted =
                all_contradicted &&
                TestAtomAgainstDomain(d, CompareOp::kEq, v) ==
                    AtomVerdict::kContradicted;
          }
          bool implied = d.values.has_value();
          if (implied) {
            for (const Value& dv : *d.values) {
              bool in = false;
              for (const Value& v : in_list) in = in || dv.Compare(v) == 0;
              implied = implied && in;
            }
          }
          if (all_contradicted) {
            verdict = AtomVerdict::kContradicted;
          } else if (implied) {
            verdict = AtomVerdict::kImpliedForNonNull;
          }
          column_not_null = !schema.column(col).nullable;
        }
      } else if (conj->kind() == ExprKind::kIsNotNull &&
                 conj->child(0)->kind() == ExprKind::kColumnRef &&
                 !schema.column(conj->child(0)->column_index()).nullable) {
        // IS NOT NULL on a NOT NULL column is a tautology.
        verdict = AtomVerdict::kImpliedForNonNull;
        column_not_null = true;
      } else if (conj->kind() == ExprKind::kIsNull &&
                 conj->child(0)->kind() == ExprKind::kColumnRef &&
                 !schema.column(conj->child(0)->column_index()).nullable) {
        verdict = AtomVerdict::kContradicted;
      }

      if (verdict == AtomVerdict::kContradicted) {
        contradiction = true;
        break;
      }
      if (verdict == AtomVerdict::kImpliedForNonNull && column_not_null) {
        // Sound to drop: the conjunct is TRUE for every row that can
        // exist (CHECK holds; the column cannot be NULL).
        changed = true;
        continue;
      }
      if (verdict == AtomVerdict::kImpliedForNonNull && !column_not_null &&
          CollectingNearMisses()) {
        // CHECK implies the conjunct for every non-NULL value; only the
        // column's nullability keeps it in the plan.
        const SpecShape::BaseTable* bt = owner(col);
        if (bt != nullptr) {
          std::string cname =
              bt->get->table().schema().column(col - bt->offset).name;
          obs::NearMiss miss;
          miss.goal = "check.implied_predicate";
          miss.table = bt->get->table().name();
          miss.alias = bt->get->alias();
          miss.kind = obs::MissingFactKind::kNotNull;
          miss.fact = "NOT NULL (" + cname + ")";
          miss.replay_key_columns = {cname};
          miss.bound_columns = "(" + cname + ")";
          near_misses_.push_back(std::move(miss));
        }
      }
      kept.push_back(conj);
    }
    if (contradiction) {
      PlanPtr after = SelectNode::Make(select->input(), FalseLiteral());
      RewriteEvidence evidence;
      evidence.before = node;
      evidence.after = after;
      evidence.facts = {
          "a WHERE conjunct is contradicted by a CHECK constraint; no row "
          "can satisfy the selection"};
      Record(RewriteRuleId::kDetectEmptyResult,
             "WHERE conjunct contradicts a CHECK constraint: result is "
             "empty",
             std::move(evidence));
      return after;
    }
    if (!changed) {
      Rejected(RewriteRuleId::kRemoveImpliedPredicate);
      return node;
    }
    PlanPtr after = kept.empty()
                        ? select->input()
                        : SelectNode::Make(select->input(),
                                           Expr::MakeAnd(std::move(kept)));
    RewriteEvidence evidence;
    evidence.before = node;
    evidence.after = after;
    evidence.facts = {
        "dropped conjunct(s) are implied by CHECK constraints on NOT NULL "
        "columns (true for every storable row)"};
    Record(RewriteRuleId::kRemoveImpliedPredicate,
           "dropped WHERE conjunct(s) implied by CHECK constraints",
           std::move(evidence));
    return after;
  }

  // §7 extension: drop a table joined only through a declared foreign
  // key. Preconditions checked below guarantee every surviving row
  // matched the eliminated table exactly once, so ALL semantics are
  // preserved.
  Result<PlanPtr> TryJoinElimination(const PlanPtr& node) {
    const ProjectNode* project = As<ProjectNode>(node);
    if (project == nullptr) return node;
    Result<SpecShape> shape_result = ExtractSpecShape(node);
    if (!shape_result.ok()) return node;
    const SpecShape& shape = *shape_result;
    if (shape.tables.size() < 2) return node;
    // Existential filters hold column references into the product
    // schema; eliminating a table would invalidate them. Be
    // conservative.
    if (!shape.exists_filters.empty()) return node;

    Considered(RewriteRuleId::kJoinElimination);
    for (size_t victim_idx = 0; victim_idx < shape.tables.size();
         ++victim_idx) {
      const SpecShape::BaseTable& victim = shape.tables[victim_idx];
      size_t begin = victim.offset;
      size_t end = begin + victim.get->schema().num_columns();
      auto in_victim = [&](size_t col) { return col >= begin && col < end; };

      // 1. Projection must not use the victim.
      bool projected = false;
      for (size_t col : project->columns()) projected |= in_victim(col);
      if (projected) continue;

      // 2. Every predicate touching the victim must be an equality
      //    between a victim column and an outside column.
      std::vector<std::pair<size_t, size_t>> pairs;  // (outside, inside)
      bool disqualified = false;
      for (const ExprPtr& pred : shape.predicates) {
        std::vector<size_t> cols;
        pred->CollectColumns(&cols);
        bool touches = false;
        for (size_t c : cols) touches |= in_victim(c);
        if (!touches) continue;
        EqualityAtom atom = ClassifyAtom(pred);
        if (atom.type != AtomType::kType2ColumnColumn) {
          disqualified = true;
          break;
        }
        size_t inside;
        size_t outside;
        if (in_victim(atom.column) && !in_victim(atom.other_column)) {
          inside = atom.column;
          outside = atom.other_column;
        } else if (in_victim(atom.other_column) && !in_victim(atom.column)) {
          inside = atom.other_column;
          outside = atom.column;
        } else {
          disqualified = true;  // victim-internal or unexpected shape
          break;
        }
        pairs.emplace_back(outside, inside - begin);
      }
      if (disqualified || pairs.empty()) continue;

      // 3. Some declared foreign key from another FROM table must cover
      //    the victim's joined columns; `representative[i]` then holds,
      //    for each joined victim ordinal i, the product column whose
      //    value provably equals the victim column (the FK source).
      std::map<size_t, size_t> representative;
      if (!MatchesForeignKey(shape, victim, pairs, &representative)) {
        continue;
      }
      return EliminateTable(node, *project, shape, victim_idx, pairs,
                            representative);
    }
    Rejected(RewriteRuleId::kJoinElimination);
    return node;
  }

  /// Searches for a foreign key (B → victim) such that:
  ///  - B is another FROM table and every FK column of B is NOT NULL
  ///    (a NULL row would be dropped by the join but kept afterwards);
  ///  - every joined victim column (`pairs[*].second`) is one of the
  ///    FK's referenced key columns (equalities on non-key victim
  ///    columns cannot be reproduced after elimination);
  ///  - every referenced key column is actually joined (otherwise the
  ///    victim could match more than one row).
  /// On success fills `representative`: victim ordinal → product column
  /// of the FK source providing the same value.
  static bool MatchesForeignKey(
      const SpecShape& shape, const SpecShape::BaseTable& victim,
      const std::vector<std::pair<size_t, size_t>>& pairs,
      std::map<size_t, size_t>* representative) {
    const TableDef& victim_def = victim.get->table();
    for (const SpecShape::BaseTable& source : shape.tables) {
      if (&source == &victim) continue;
      const TableDef& source_def = source.get->table();
      size_t src_begin = source.offset;
      for (const ForeignKeyConstraint& fk : source_def.foreign_keys()) {
        if (fk.ref_table != victim_def.name()) continue;
        std::vector<size_t> ref_ordinals;
        bool ok = true;
        for (const std::string& rc : fk.ref_columns) {
          auto ord = victim_def.ColumnOrdinal(rc);
          if (!ord.ok()) {
            ok = false;
            break;
          }
          ref_ordinals.push_back(*ord);
        }
        for (size_t c : fk.columns) {
          ok = ok && !source_def.schema().column(c).nullable;
        }
        if (!ok) continue;

        std::map<size_t, size_t> reps;
        for (size_t j = 0; j < ref_ordinals.size(); ++j) {
          reps[ref_ordinals[j]] = src_begin + fk.columns[j];
        }
        // Every pair's victim column must be a referenced key column.
        bool pairs_ok = true;
        for (const auto& [outside, inside] : pairs) {
          (void)outside;
          pairs_ok = pairs_ok && reps.count(inside) > 0;
        }
        if (!pairs_ok) continue;
        // The FK's own equalities must all be present in the query:
        // only then is the guaranteed FK target row the row the join
        // actually matched, making any *additional* pair equivalent to
        // the derived predicate `outside = fk_source_column`.
        bool fk_join_present = true;
        for (size_t j = 0; j < ref_ordinals.size() && fk_join_present;
             ++j) {
          bool found = false;
          for (const auto& [outside, inside] : pairs) {
            found = found || (inside == ref_ordinals[j] &&
                              outside == src_begin + fk.columns[j]);
          }
          fk_join_present = found;
        }
        if (!fk_join_present) continue;
        *representative = std::move(reps);
        return true;
      }
    }
    return false;
  }

  Result<PlanPtr> EliminateTable(
      const PlanPtr& node, const ProjectNode& project, const SpecShape& shape,
      size_t victim_idx, const std::vector<std::pair<size_t, size_t>>& pairs,
      const std::map<size_t, size_t>& representative) {
    const SpecShape::BaseTable& victim = shape.tables[victim_idx];
    size_t begin = victim.offset;
    size_t width = victim.get->schema().num_columns();
    size_t end = begin + width;

    // Old→new column mapping over the shrunken product.
    std::vector<size_t> mapping(shape.width, 0);
    for (size_t i = 0; i < shape.width; ++i) {
      mapping[i] = i < begin ? i : (i >= end ? i - width : 0);
    }

    // Rebuild the product of surviving tables (original order).
    PlanPtr plan;
    for (size_t i = 0; i < shape.tables.size(); ++i) {
      if (i == victim_idx) continue;
      PlanPtr get = GetNode::Make(&shape.tables[i].get->table(),
                                  shape.tables[i].get->alias());
      plan = plan == nullptr ? get : ProductNode::Make(plan, get);
    }
    // Surviving predicates, remapped.
    std::vector<ExprPtr> predicates;
    for (const ExprPtr& pred : shape.predicates) {
      std::vector<size_t> cols;
      pred->CollectColumns(&cols);
      bool touches = false;
      for (size_t c : cols) touches |= (c >= begin && c < end);
      if (touches) continue;  // the FK equalities vanish with the table
      predicates.push_back(RemapColumns(pred, mapping));
    }
    // Derived predicates: a pair (o, i) with o different from the FK
    // source column constrained the victim's key from two sides; the
    // constraint survives as o = representative(i).
    const Schema& product_schema = project.input()->schema();
    for (const auto& [outside, inside] : pairs) {
      size_t rep = representative.at(inside);
      if (rep == outside) continue;
      const Column& oc = product_schema.column(outside);
      const Column& rc = product_schema.column(rep);
      ExprPtr derived = Expr::Compare(
          CompareOp::kEq,
          Expr::ColumnRef(mapping[outside], oc.QualifiedName(), oc.type,
                          oc.nullable),
          Expr::ColumnRef(mapping[rep], rc.QualifiedName(), rc.type,
                          rc.nullable));
      predicates.push_back(std::move(derived));
    }
    if (!predicates.empty()) {
      plan = SelectNode::Make(plan, Expr::MakeAnd(std::move(predicates)));
    }
    std::vector<size_t> new_columns;
    for (size_t col : project.columns()) new_columns.push_back(mapping[col]);
    PlanPtr after = ProjectNode::Make(std::move(plan), project.mode(),
                                      std::move(new_columns));
    RewriteEvidence evidence;
    evidence.before = node;
    evidence.after = after;
    evidence.facts = {
        "NOT NULL foreign key onto a candidate key of " +
            victim.get->table().name() +
            " guarantees exactly one match per referencing row",
        "victim contributes no projection columns and no other predicates"};
    Record(RewriteRuleId::kJoinElimination,
           "eliminated join with " + victim.get->table().name() +
               " (inclusion dependency guarantees exactly one match)",
           std::move(evidence));
    return after;
  }

  // §6: π_d[A ⊆ left](σ[C](L × R)) → π_d[A](Exists(σ[C_L](L), R, rest)).
  Result<PlanPtr> TryJoinToSubquery(const PlanPtr& node) {
    const ProjectNode* project = As<ProjectNode>(node);
    if (project == nullptr) return node;
    const SelectNode* select = As<SelectNode>(project->input());
    if (select == nullptr) return node;
    const ProductNode* product = As<ProductNode>(select->input());
    if (product == nullptr) return node;
    size_t left_width = product->left()->schema().num_columns();
    for (size_t col : project->columns()) {
      if (col >= left_width) return node;  // projection must be left-only
    }
    // Partition conjuncts: left-only stay on the outer; everything else
    // becomes the correlation.
    std::vector<ExprPtr> outer_pred;
    std::vector<ExprPtr> correlation;
    for (const ExprPtr& conj : FlattenAnd(select->predicate())) {
      std::vector<size_t> cols;
      conj->CollectColumns(&cols);
      bool left_only = true;
      for (size_t c : cols) left_only = left_only && c < left_width;
      (left_only ? outer_pred : correlation).push_back(conj);
    }
    PlanPtr outer = product->left();
    if (!outer_pred.empty()) {
      outer = SelectNode::Make(outer, Expr::MakeAnd(std::move(outer_pred)));
    }
    PlanPtr exists =
        ExistsNode::Make(outer, product->right(),
                         Expr::MakeAnd(std::move(correlation)),
                         /*negated=*/false);
    // Valid unconditionally for π_Dist; for π_All the discarded side must
    // match at most once (Theorem 2 read right-to-left).
    Considered(RewriteRuleId::kJoinToSubquery);
    obs::Span span("rewrite.rule.JoinToSubquery");
    if (project->mode() == DuplicateMode::kAll) {
      Result<SubqueryVerdict> verdict = TestSubqueryAtMostOneMatch(
          *As<ExistsNode>(exists), options_.analysis);
      span.AddAttr("at_most_one_match",
                   verdict.ok() && verdict->at_most_one_match);
      if (!verdict.ok() || !verdict->at_most_one_match) {
        Rejected(RewriteRuleId::kJoinToSubquery);
        return node;
      }
      PlanPtr after = ProjectNode::Make(exists, project->mode(),
                                        project->columns());
      RewriteEvidence evidence;
      evidence.before = node;
      evidence.after = after;  // full π(EXISTS) subtree, matching `before`
      evidence.proof = std::move(verdict->proof);
      evidence.facts = std::move(verdict->trace);
      Record(RewriteRuleId::kJoinToSubquery,
             "join converted to EXISTS (Theorem 2: discarded side unique)",
             std::move(evidence));
      return after;
    }
    span.AddAttr("mode", "distinct");
    PlanPtr after = ProjectNode::Make(exists, project->mode(),
                                      project->columns());
    RewriteEvidence evidence;
    evidence.before = node;
    evidence.after = after;
    evidence.facts = {
        "projection is DISTINCT: the join-to-EXISTS direction of the "
        "Dist/Dist equivalence holds unconditionally"};
    Record(RewriteRuleId::kJoinToSubquery,
           "DISTINCT join converted to EXISTS", std::move(evidence));
    return after;
  }

  const RewriteOptions& options_;
  std::vector<AppliedRewrite> applied_;
  std::vector<obs::NearMiss> near_misses_;
};

}  // namespace

Result<RewriteResult> RewritePlan(const PlanPtr& plan,
                                  const RewriteOptions& options) {
  obs::Span span("rewrite.plan");
  obs::MetricsRegistry::Global().GetCounter("rewrite.plans").Increment();
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("rewrite.plan.ns");
  obs::ScopedLatencyTimer timer(&latency);
  Rewriter rewriter(options);
  RewriteResult result;
  UNIQOPT_ASSIGN_OR_RETURN(result.plan, rewriter.Transform(plan));
  result.applied = rewriter.TakeApplied();
  result.near_misses = rewriter.TakeNearMisses();
  span.AddAttr("rewrites_applied",
               static_cast<uint64_t>(result.applied.size()));
  return result;
}

}  // namespace uniqopt
