#include "uniqopt/optimizer.h"

#include "common/string_util.h"

namespace uniqopt {

std::string PreparedQuery::Explain() const {
  std::string out = "SQL: " + sql + "\n";
  out += "-- logical plan --\n";
  out += original_plan->ToString();
  if (rewrites.empty()) {
    out += "-- no rewrites applied --\n";
  } else {
    out += "-- rewrites --\n";
    for (const AppliedRewrite& r : rewrites) {
      out += "  ";
      out += RewriteRuleIdToString(r.rule);
      out += ": ";
      out += r.description;
      out += "\n";
    }
    out += "-- optimized plan --\n";
    out += optimized_plan->ToString();
  }
  if (cost_based) {
    out += "-- cost-based choice --\n";
    out += "  " + chosen_label +
           " (est. rows=" + std::to_string(chosen_estimate.rows) +
           ", cost=" + std::to_string(chosen_estimate.cost) + ")\n";
  }
  return out;
}

Result<PreparedQuery> Optimizer::Prepare(const std::string& sql) const {
  Binder binder(&db_->catalog());
  UNIQOPT_ASSIGN_OR_RETURN(BoundQuery bound, binder.BindSql(sql));
  UNIQOPT_ASSIGN_OR_RETURN(RewriteResult rewritten,
                           RewritePlan(bound.plan, rewrite_options_));
  PreparedQuery out;
  out.sql = sql;
  out.original_plan = std::move(bound.plan);
  out.optimized_plan = std::move(rewritten.plan);
  out.rewrites = std::move(rewritten.applied);
  out.host_vars = std::move(bound.host_vars);
  if (use_cost_model_) {
    CostEstimator estimator(db_);
    std::vector<PlanAlternative> alternatives =
        StandardAlternatives(out.original_plan, out.optimized_plan);
    size_t best = ChooseBestAlternative(estimator, &alternatives);
    out.cost_based = true;
    out.optimized_plan = alternatives[best].plan;
    out.chosen_physical = alternatives[best].physical;
    out.chosen_label = alternatives[best].label;
    out.chosen_estimate = alternatives[best].estimate;
  }
  return out;
}

Result<std::vector<Row>> Optimizer::Execute(
    const PreparedQuery& query,
    const std::vector<std::pair<std::string, Value>>& params,
    const PhysicalOptions& physical, ExecStats* stats) const {
  ExecContext ctx;
  ctx.params.resize(query.host_vars.size());
  std::vector<bool> bound(query.host_vars.size(), false);
  for (const auto& [name, value] : params) {
    bool found = false;
    for (size_t i = 0; i < query.host_vars.size(); ++i) {
      if (EqualsIgnoreCase(query.host_vars[i].name, name)) {
        ctx.params[i] = value;
        bound[i] = true;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown host variable: " + name);
    }
  }
  for (size_t i = 0; i < bound.size(); ++i) {
    if (!bound[i]) {
      return Status::InvalidArgument("host variable not bound: :" +
                                     query.host_vars[i].name);
    }
  }
  const PhysicalOptions& effective =
      query.cost_based ? query.chosen_physical : physical;
  UNIQOPT_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      ExecutePlan(query.optimized_plan, *db_, &ctx, effective));
  if (stats != nullptr) *stats = ctx.stats;
  return rows;
}

Result<std::vector<Row>> Optimizer::Query(
    const std::string& sql,
    const std::vector<std::pair<std::string, Value>>& params,
    const PhysicalOptions& physical, ExecStats* stats) const {
  UNIQOPT_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(sql));
  return Execute(prepared, params, physical, stats);
}

Result<UniquenessVerdict> Optimizer::AnalyzeSql(const std::string& sql) const {
  Binder binder(&db_->catalog());
  UNIQOPT_ASSIGN_OR_RETURN(BoundQuery bound, binder.BindSql(sql));
  return AnalyzeDistinct(bound.plan, rewrite_options_.analysis);
}

}  // namespace uniqopt
