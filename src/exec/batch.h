#ifndef UNIQOPT_EXEC_BATCH_H_
#define UNIQOPT_EXEC_BATCH_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "types/row.h"

namespace uniqopt {

/// A batch of rows with a selection vector, the unit of the
/// batch-at-a-time execution path (`Operator::NextBatch`).
///
/// Rows live in one of two storage modes:
///  - *borrowed*: `Borrow()` points the batch at a contiguous span of
///    rows owned by someone else (a base table, a materialized output
///    vector). Zero copies — scans and pipeline breakers hand out views
///    into their storage, and filters narrow them by editing only the
///    selection vector.
///  - *owned*: `Append()` copies/moves rows into the batch's own
///    storage (projections, join outputs — anything that constructs new
///    rows).
/// `Reset()` returns the batch to empty; the two modes must not be
/// mixed within one fill.
///
/// The selection vector holds indexes into the underlying row span, in
/// output order. `row(i)` resolves the i-th *selected* row. Operators
/// that drop rows (filters) compact `selection()` in place and never
/// touch row storage.
///
/// `capacity` is a fill target, not a hard limit: producers stop
/// appending once `size() >= capacity()`, but a single production step
/// (e.g. one probe row matching many build rows) may overshoot.
class RowBatch {
 public:
  static constexpr size_t kDefaultBatchSize = 1024;

  explicit RowBatch(size_t capacity = kDefaultBatchSize)
      : capacity_(capacity == 0 ? kDefaultBatchSize : capacity) {}

  size_t capacity() const { return capacity_; }
  /// Number of selected (visible) rows.
  size_t size() const { return selection_.size(); }
  bool empty() const { return selection_.empty(); }

  void Reset() {
    data_ = nullptr;
    data_size_ = 0;
    owned_.clear();
    selection_.clear();
  }

  /// Points the batch at `n` externally-owned rows (which must outlive
  /// the batch fill) and selects all of them.
  void Borrow(const Row* rows, size_t n) {
    data_ = rows;
    data_size_ = n;
    owned_.clear();
    selection_.resize(n);
    for (size_t i = 0; i < n; ++i) selection_[i] = static_cast<uint32_t>(i);
  }

  /// Appends a row into owned storage and selects it.
  void Append(Row row) {
    owned_.push_back(std::move(row));
    data_ = owned_.data();
    data_size_ = owned_.size();
    selection_.push_back(static_cast<uint32_t>(owned_.size() - 1));
  }

  /// The i-th selected row.
  const Row& row(size_t i) const { return data_[selection_[i]]; }

  /// Underlying row span (selected or not); filters index it through
  /// the selection vector they are compacting.
  const Row* data() const { return data_; }
  size_t data_size() const { return data_size_; }

  /// Mutable selection vector, for in-place compaction by filters.
  std::vector<uint32_t>& selection() { return selection_; }
  const std::vector<uint32_t>& selection() const { return selection_; }

 private:
  size_t capacity_;
  const Row* data_ = nullptr;  ///< borrowed span, or owned_.data()
  size_t data_size_ = 0;
  std::vector<Row> owned_;
  std::vector<uint32_t> selection_;
};

}  // namespace uniqopt

#endif  // UNIQOPT_EXEC_BATCH_H_
