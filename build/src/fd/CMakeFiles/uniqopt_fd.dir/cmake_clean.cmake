file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_fd.dir/attribute_set.cc.o"
  "CMakeFiles/uniqopt_fd.dir/attribute_set.cc.o.d"
  "CMakeFiles/uniqopt_fd.dir/functional_dependency.cc.o"
  "CMakeFiles/uniqopt_fd.dir/functional_dependency.cc.o.d"
  "libuniqopt_fd.a"
  "libuniqopt_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
