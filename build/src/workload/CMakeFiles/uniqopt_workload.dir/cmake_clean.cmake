file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_workload.dir/query_corpus.cc.o"
  "CMakeFiles/uniqopt_workload.dir/query_corpus.cc.o.d"
  "CMakeFiles/uniqopt_workload.dir/random_query.cc.o"
  "CMakeFiles/uniqopt_workload.dir/random_query.cc.o.d"
  "CMakeFiles/uniqopt_workload.dir/supplier_schema.cc.o"
  "CMakeFiles/uniqopt_workload.dir/supplier_schema.cc.o.d"
  "libuniqopt_workload.a"
  "libuniqopt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
