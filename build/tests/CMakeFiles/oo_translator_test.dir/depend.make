# Empty dependencies file for oo_translator_test.
# This may be replaced when dependencies are built.
