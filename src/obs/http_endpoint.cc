#include "obs/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "obs/advisor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sentinel.h"
#include "obs/timeseries.h"

namespace uniqopt {
namespace obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a scraper hanging up mid-response must not SIGPIPE
    // the host process.
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing to clean up
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpEndpoint::HttpEndpoint(CollectingSink* sink, QueryRecorder* recorder)
    : sink_(sink),
      recorder_(recorder != nullptr ? recorder : &QueryRecorder::Global()) {}

HttpEndpoint::~HttpEndpoint() { Stop(); }

Status HttpEndpoint::Start(uint16_t port) {
  if (serving()) return Status::AlreadyExists("endpoint already serving");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status st = Status::Internal(std::string("bind: ") +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status st = Status::Internal(std::string("listen: ") +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  start_steady_ns_.store(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count()),
      std::memory_order_relaxed);
  serving_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  UNIQOPT_LOG(kInfo) << "observability endpoint on 127.0.0.1:" << port_;
  return Status::OK();
}

void HttpEndpoint::Stop() {
  if (!serving_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Unblock accept(): shutdown() wakes it, close() releases the fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
}

void HttpEndpoint::Serve() {
  while (serving_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop(), or fatal
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

std::string HttpEndpoint::RenderPath(const std::string& path) const {
  if (path == "/metrics") {
    return ToPrometheusText(SnapshotMetrics(MetricsRegistry::Global()));
  }
  if (path == "/trace") {
    std::vector<TraceEvent> events =
        sink_ != nullptr ? sink_->Events() : std::vector<TraceEvent>{};
    return ToChromeTraceJson(events);
  }
  if (path == "/queries") {
    return recorder_->ToJson();
  }
  if (path == "/advisor") {
    return AdvisorStore::Global().ToJson();
  }
  if (path == "/timeseries") {
    return TimeSeriesPlane::Global().ToJson();
  }
  if (path == "/alerts") {
    return Sentinel::Global().ToJson();
  }
  if (path == "/healthz") {
    uint64_t start = start_steady_ns_.load(std::memory_order_relaxed);
    uint64_t now = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    uint64_t uptime_ms = start == 0 ? 0 : (now - start) / 1000000;
    TimeSeriesPlane& plane = TimeSeriesPlane::Global();
    return "{\"status\": \"ok\", \"uptime_ms\": " +
           std::to_string(uptime_ms) + ", \"ticker_running\": " +
           (plane.ticker_running() ? "true" : "false") +
           ", \"ticks\": " + std::to_string(plane.ticks()) +
           ", \"sentinel_enabled\": " +
           (Sentinel::Global().enabled() ? "true" : "false") + "}\n";
  }
  if (path == "/" || path == "/index") {
    return "uniqopt observability endpoint\n"
           "  /metrics     Prometheus text exposition\n"
           "  /trace       Chrome trace-event JSON (load in Perfetto)\n"
           "  /queries     query flight recorder history (JSON)\n"
           "  /advisor     uniqueness constraint advisor suggestions (JSON)\n"
           "  /timeseries  windowed time-series plane snapshot (JSON)\n"
           "  /alerts      regression sentinel alert ring (JSON)\n"
           "  /healthz     liveness: uptime and ticker state (JSON)\n";
  }
  return "";
}

void HttpEndpoint::HandleConnection(int fd) {
  std::string request;
  char buf[1024];
  // Read until the header terminator; a single recv usually suffices for
  // `GET <path> HTTP/1.1`.
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  size_t sp1 = request.find(' ');
  std::string method =
      sp1 == std::string::npos ? "" : request.substr(0, sp1);
  // HEAD is GET minus the body: same status, same headers (including
  // the Content-Length the GET would have had), nothing after them.
  bool head = method == "HEAD";
  if (method != "GET" && !head) {
    SendAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                             "only GET and HEAD are supported\n"));
    return;
  }
  size_t sp2 = request.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    SendAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                             "malformed request line\n"));
    return;
  }
  std::string path = request.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t query = path.find('?');
  if (query != std::string::npos) path = path.substr(0, query);
  std::string body = RenderPath(path);
  if (body.empty()) {
    std::string error = "{\"error\": \"not found\", \"path\": \"" +
                        JsonEscape(path) + "\"}\n";
    std::string response =
        HttpResponse(404, "Not Found", "application/json", error);
    if (head) response.resize(response.size() - error.size());
    SendAll(fd, response);
    return;
  }
  const char* content_type =
      (path == "/trace" || path == "/queries" || path == "/advisor" ||
       path == "/timeseries" || path == "/alerts" || path == "/healthz")
          ? "application/json"
      : path == "/metrics"
          ? "text/plain; version=0.0.4; charset=utf-8"
          : "text/plain; charset=utf-8";
  std::string response = HttpResponse(200, "OK", content_type, body);
  if (head) response.resize(response.size() - body.size());
  SendAll(fd, response);
}

}  // namespace obs
}  // namespace uniqopt
