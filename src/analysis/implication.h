#ifndef UNIQOPT_ANALYSIS_IMPLICATION_H_
#define UNIQOPT_ANALYSIS_IMPLICATION_H_

#include <map>
#include <optional>
#include <vector>

#include "catalog/table_def.h"
#include "expr/expr.h"

namespace uniqopt {

/// §7 of the paper proposes "query transformations based on
/// true-interpreted predicates": reasoning from CHECK table constraints
/// about query conjuncts. This module implements the implication engine
/// behind the `RemoveImpliedPredicate` / `DetectEmptyResult` rewrites.
///
/// Semantics reminder (Table 2 of the paper): CHECKs are
/// true-interpreted — a row satisfies `CHECK(P)` when P is TRUE *or
/// UNKNOWN*. Hence a CHECK constrains only the non-NULL values of a
/// column; implication of a WHERE conjunct (false-interpreted) is sound
/// only when NULL cannot slip through — either the column is declared
/// NOT NULL or the conjunct itself rejects NULLs anyway (contradiction
/// testing needs no such guard: FALSE and UNKNOWN both reject).

/// The set of non-NULL values a column may take, as implied by CHECK
/// constraints: an interval, optionally refined to a finite value list
/// (from `col IN (...)`-style disjunctions).
struct ValueDomain {
  std::optional<Value> min;
  bool min_inclusive = true;
  std::optional<Value> max;
  bool max_inclusive = true;
  /// When set, the domain is exactly this finite list (already
  /// intersected with the interval).
  std::optional<std::vector<Value>> values;

  bool Unconstrained() const {
    return !min.has_value() && !max.has_value() && !values.has_value();
  }
};

/// Per-column domains of one table, extracted from its CHECK
/// constraints. Only top-level conjuncts of each CHECK contribute:
/// atoms `col op const` refine the interval; disjunctions whose
/// disjuncts are all `col = const` on one column yield finite sets.
class ColumnDomains {
 public:
  /// Builds domains for `table` from its CHECK constraints.
  static ColumnDomains FromTable(const TableDef& table);

  /// Domain of column `ordinal` (unconstrained default when no CHECK
  /// mentions it).
  const ValueDomain& domain(size_t ordinal) const;

 private:
  std::map<size_t, ValueDomain> domains_;
};

/// Verdict of testing a WHERE atom against the CHECK-derived domain.
enum class AtomVerdict {
  /// The atom is TRUE for every non-NULL value in the domain. Sound to
  /// drop only when the column cannot be NULL.
  kImpliedForNonNull,
  /// The atom is FALSE for every non-NULL value in the domain (and
  /// UNKNOWN for NULL): no row can pass — the conjunction is empty.
  kContradicted,
  kUnknown,
};

/// Tests `col op constant` against `domain`.
AtomVerdict TestAtomAgainstDomain(const ValueDomain& domain, CompareOp op,
                                  const Value& constant);

/// Pattern-match `expr` as `col op const` (either operand order;
/// operator mirrored as needed). Returns true on match.
bool MatchColumnConstant(const ExprPtr& expr, size_t* column, CompareOp* op,
                         Value* constant);

/// Pattern-match `expr` as a disjunction `col = c1 OR col = c2 OR ...`
/// over one column. On match fills the values.
bool MatchColumnInList(const ExprPtr& expr, size_t* column,
                       std::vector<Value>* values);

}  // namespace uniqopt

#endif  // UNIQOPT_ANALYSIS_IMPLICATION_H_
