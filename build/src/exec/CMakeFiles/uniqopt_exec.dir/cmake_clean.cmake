file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_exec.dir/cost_model.cc.o"
  "CMakeFiles/uniqopt_exec.dir/cost_model.cc.o.d"
  "CMakeFiles/uniqopt_exec.dir/operators.cc.o"
  "CMakeFiles/uniqopt_exec.dir/operators.cc.o.d"
  "CMakeFiles/uniqopt_exec.dir/planner.cc.o"
  "CMakeFiles/uniqopt_exec.dir/planner.cc.o.d"
  "libuniqopt_exec.a"
  "libuniqopt_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
