#ifndef UNIQOPT_OODB_OBJECT_STORE_H_
#define UNIQOPT_OODB_OBJECT_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "types/row.h"
#include "types/value.h"

namespace uniqopt {
namespace oodb {

/// A physical object identifier. OIDs are direct pointers in EXODUS/O2
/// style (§6.2); here they index the store's object array. 0 is the null
/// OID.
using Oid = size_t;
inline constexpr Oid kNullOid = 0;

struct ObjectField {
  std::string name;
  TypeId type = TypeId::kInteger;
};

/// Definition of one class in the object database. `parent_class` models
/// Figure 3's relationship mechanism: each instance carries a physical
/// pointer to its parent object (child→parent, the direction that makes
/// parent-restricted joins awkward — the paper's §6.2 motivation).
struct ClassDef {
  std::string name;
  std::vector<ObjectField> fields;
  std::string parent_class;  ///< empty for top classes

  Result<size_t> FieldIndex(const std::string& field_name) const;
};

struct StoredObject {
  size_t class_id = 0;
  Row fields;
  Oid parent = kNullOid;
};

/// Total order on values for index organization.
struct ValueOrder {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) < 0;
  }
};

/// The object database: class extents, objects with parent OIDs, and
/// per-(class, field) value indexes (ordered, supporting both point and
/// range probes).
class ObjectStore {
 public:
  Result<size_t> AddClass(ClassDef def);
  Result<size_t> ClassId(const std::string& name) const;
  const ClassDef& class_def(size_t class_id) const {
    return classes_[class_id];
  }

  /// Inserts an object; `parent` must be an object of the declared
  /// parent class (or kNullOid when the class has none).
  Result<Oid> Insert(size_t class_id, Row fields, Oid parent = kNullOid);

  const StoredObject& Get(Oid oid) const { return objects_[oid]; }
  const std::vector<Oid>& Extent(size_t class_id) const {
    return extents_[class_id];
  }

  /// Builds an ordered secondary index on (class, field).
  Status CreateIndex(size_t class_id, const std::string& field);
  bool HasIndex(size_t class_id, size_t field) const;

  /// Ordered index access used by NavigationSession.
  using IndexMap = std::multimap<Value, Oid, ValueOrder>;
  Result<const IndexMap*> GetIndex(size_t class_id, size_t field) const;

  size_t num_objects() const { return objects_.size() - 1; }

 private:
  std::vector<ClassDef> classes_;
  std::vector<StoredObject> objects_{1};  // slot 0 reserved for null OID
  std::vector<std::vector<Oid>> extents_;
  std::map<std::pair<size_t, size_t>, IndexMap> indexes_;
};

/// Navigation cost accounting for one strategy run: what the paper's
/// Example 11 compares.
struct NavStats {
  size_t pointer_derefs = 0;    ///< child→parent OID chases (object fault)
  size_t objects_retrieved = 0; ///< objects materialized from the store
  size_t index_probes = 0;      ///< index lookups issued
  size_t index_entries = 0;     ///< index entries scanned
  size_t header_peeks = 0;      ///< parent-OID header reads (no fault)

  /// A simple I/O-weighted cost: materializing an object or chasing a
  /// pointer faults a page (weight 1); index probes touch a few interior
  /// nodes (0.1); scanned entries and header peeks are in-memory
  /// (0.01). Only used to *summarize* strategy comparisons; the raw
  /// counters are what the benchmarks report.
  double EstimatedIoCost() const {
    return static_cast<double>(objects_retrieved + pointer_derefs) +
           0.1 * static_cast<double>(index_probes) +
           0.01 * static_cast<double>(index_entries + header_peeks);
  }

  std::string ToString() const;
};

/// A cost-counting view of an ObjectStore. Work is counted twice: in
/// the per-session `stats()` and as accumulating `oodb.nav.*` registry
/// counters (tests pass a private registry for isolated deltas).
class NavigationSession {
 public:
  explicit NavigationSession(const ObjectStore* store,
                             obs::MetricsRegistry* registry =
                                 &obs::MetricsRegistry::Global())
      : store_(store),
        derefs_counter_(&registry->GetCounter("oodb.nav.pointer_derefs")),
        retrieved_counter_(
            &registry->GetCounter("oodb.nav.objects_retrieved")),
        probes_counter_(&registry->GetCounter("oodb.nav.index_probes")),
        entries_counter_(&registry->GetCounter("oodb.nav.index_entries")),
        peeks_counter_(&registry->GetCounter("oodb.nav.header_peeks")) {}

  /// Chases a parent pointer and materializes the target.
  const StoredObject& Deref(Oid oid) {
    ++stats_.pointer_derefs;
    derefs_counter_->Increment();
    ++stats_.objects_retrieved;
    retrieved_counter_->Increment();
    return store_->Get(oid);
  }
  /// Materializes an object found via extent or index.
  const StoredObject& Retrieve(Oid oid) {
    ++stats_.objects_retrieved;
    retrieved_counter_->Increment();
    return store_->Get(oid);
  }
  /// Reads only the parent OID from an object header — cheaper than a
  /// full retrieval (the qualification `PARTS.SUPPLIER.OID =
  /// SUPPLIER.OID` of Example 11's parent-driven plan needs nothing
  /// else).
  Oid PeekParent(Oid oid) {
    ++stats_.header_peeks;
    peeks_counter_->Increment();
    return store_->Get(oid).parent;
  }
  /// Point probe: all OIDs with field == value.
  Result<std::vector<Oid>> IndexEq(size_t class_id, size_t field,
                                   const Value& value);
  /// Range probe: all OIDs with lo <= field <= hi.
  Result<std::vector<Oid>> IndexRange(size_t class_id, size_t field,
                                      const Value& lo, const Value& hi);

  const NavStats& stats() const { return stats_; }

 private:
  const ObjectStore* store_;
  obs::Counter* derefs_counter_;
  obs::Counter* retrieved_counter_;
  obs::Counter* probes_counter_;
  obs::Counter* entries_counter_;
  obs::Counter* peeks_counter_;
  NavStats stats_;
};

}  // namespace oodb
}  // namespace uniqopt

#endif  // UNIQOPT_OODB_OBJECT_STORE_H_
