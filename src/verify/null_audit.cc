#include "verify/null_audit.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace uniqopt {
namespace verify {

namespace {

void AddViolation(VerifyReport* report, ViolationCode code, std::string message,
                  std::string context = {}) {
  Violation v;
  v.analyzer = Analyzer::kNullAudit;
  v.code = code;
  v.message = std::move(message);
  v.context = std::move(context);
  report->violations.push_back(std::move(v));
}

void FlattenConjunct(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kAnd) {
    for (const ExprPtr& c : e->children()) FlattenConjunct(c, out);
    return;
  }
  out->push_back(e);
}

/// A column pair (i, n + i) matched in either operand order.
std::optional<size_t> MatchColumnPair(const ExprPtr& l, const ExprPtr& r,
                                      size_t outer_width) {
  if (l->kind() != ExprKind::kColumnRef || r->kind() != ExprKind::kColumnRef) {
    return std::nullopt;
  }
  size_t a = l->column_index();
  size_t b = r->column_index();
  if (a > b) std::swap(a, b);
  if (a < outer_width && b == outer_width + a) return a;
  return std::nullopt;
}

/// `e` is `x IS NULL` over a single column; returns that column.
std::optional<size_t> MatchIsNullColumn(const ExprPtr& e) {
  if (e->kind() != ExprKind::kIsNull || e->num_children() != 1 ||
      e->child(0)->kind() != ExprKind::kColumnRef) {
    return std::nullopt;
  }
  return e->child(0)->column_index();
}

/// `e` is the null-safe disjunct pair
///   (L.i IS NULL AND R.i IS NULL) OR L.i = R.i
/// (branches and operands in either order); returns i.
std::optional<size_t> MatchNullSafePair(const ExprPtr& e,
                                        size_t outer_width) {
  if (e->kind() != ExprKind::kOr || e->num_children() != 2) {
    return std::nullopt;
  }
  for (size_t eq_side = 0; eq_side < 2; ++eq_side) {
    const ExprPtr& eq = e->child(eq_side);
    const ExprPtr& both_null = e->child(1 - eq_side);
    if (eq->kind() != ExprKind::kComparison ||
        eq->compare_op() != CompareOp::kEq) {
      continue;
    }
    std::optional<size_t> pair =
        MatchColumnPair(eq->child(0), eq->child(1), outer_width);
    if (!pair.has_value()) continue;
    if (both_null->kind() != ExprKind::kAnd ||
        both_null->num_children() != 2) {
      continue;
    }
    std::optional<size_t> null_a = MatchIsNullColumn(both_null->child(0));
    std::optional<size_t> null_b = MatchIsNullColumn(both_null->child(1));
    if (!null_a.has_value() || !null_b.has_value()) continue;
    size_t lo = std::min(*null_a, *null_b);
    size_t hi = std::max(*null_a, *null_b);
    if (lo == *pair && hi == outer_width + *pair) return pair;
  }
  return std::nullopt;
}

}  // namespace

void AuditCorrelation(const ExistsNode& exists, const std::string& origin,
                      VerifyReport* report) {
  ++report->correlations_audited;
  const Schema& outer = exists.outer()->schema();
  const Schema& sub = exists.sub()->schema();
  size_t n = outer.num_columns();
  if (sub.num_columns() != n) {
    AddViolation(report, ViolationCode::kCorrelationWidthMismatch,
                 origin + ": tuple-equality correlation over operands of "
                          "different widths",
                 exists.correlation()->ToString());
    return;
  }
  std::vector<ExprPtr> conjuncts;
  FlattenConjunct(exists.correlation(), &conjuncts);
  std::vector<bool> covered(n, false);
  for (const ExprPtr& conj : conjuncts) {
    // A TRUE conjunct is vacuous, not unsound; the per-column coverage
    // check below still catches an incomplete tuple equality.
    if (conj->IsTrueLiteral()) continue;
    // Null-safe shape: always sound.
    if (std::optional<size_t> i = MatchNullSafePair(conj, n)) {
      covered[*i] = true;
      continue;
    }
    // Plain equality: sound only when neither side can be NULL
    // (footnote 1); otherwise rows carrying NULLs silently drop out of
    // the set operation's result.
    if (conj->kind() == ExprKind::kComparison &&
        conj->compare_op() == CompareOp::kEq) {
      std::optional<size_t> i =
          MatchColumnPair(conj->child(0), conj->child(1), n);
      if (i.has_value()) {
        if (outer.column(*i).nullable || sub.column(*i).nullable) {
          AddViolation(
              report, ViolationCode::kPlainEqOnNullable,
              origin + ": column " + outer.column(*i).QualifiedName() +
                  " compared with plain = but Theorem 3 requires the "
                  "null-safe =! (a side is nullable)",
              conj->ToString());
        }
        covered[*i] = true;
        continue;
      }
    }
    AddViolation(report, ViolationCode::kMalformedCorrelationConjunct,
                 origin + ": correlation conjunct is neither a column-wise "
                          "equality nor the null-safe =! shape",
                 conj->ToString());
  }
  for (size_t i = 0; i < n; ++i) {
    if (!covered[i]) {
      AddViolation(report, ViolationCode::kMissingCorrelationColumn,
                   origin + ": column " + outer.column(i).QualifiedName() +
                       " has no correlation conjunct — the tuple equality "
                       "is incomplete",
                   exists.correlation()->ToString());
    }
  }
}

void AuditNullSemantics(const VerifyInput& input, VerifyReport* report) {
  if (input.rewrites == nullptr) return;
  for (const AppliedRewrite& r : *input.rewrites) {
    switch (r.rule) {
      case RewriteRuleId::kIntersectToExists:
      case RewriteRuleId::kIntersectAllToExists:
      case RewriteRuleId::kExceptToNotExists: {
        if (r.evidence.after == nullptr) continue;  // lint reports this
        const ExistsNode* exists = As<ExistsNode>(r.evidence.after);
        if (exists == nullptr) continue;  // proof checker reports this
        AuditCorrelation(*exists, RewriteRuleIdToString(r.rule), report);
        break;
      }
      case RewriteRuleId::kExistsToIntersect: {
        // The converse rule *consumed* a null-safe EXISTS; auditing the
        // consumed subtree proves the precondition matcher honest.
        if (r.evidence.before == nullptr) continue;
        const ExistsNode* exists = As<ExistsNode>(r.evidence.before);
        if (exists == nullptr) continue;
        AuditCorrelation(*exists, RewriteRuleIdToString(r.rule), report);
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace verify
}  // namespace uniqopt
