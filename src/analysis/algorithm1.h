#ifndef UNIQOPT_ANALYSIS_ALGORITHM1_H_
#define UNIQOPT_ANALYSIS_ALGORITHM1_H_

#include <string>
#include <vector>

#include "analysis/properties.h"
#include "analysis/shape.h"
#include "common/result.h"
#include "fd/attribute_set.h"

namespace uniqopt {

/// Options for the paper's Algorithm 1 (§4) on top of the shared
/// analysis switches.
struct Algorithm1Options : AnalysisOptions {
  /// Reproduce the published algorithm exactly, including line 10's
  /// `if C = T then return NO`. When false (default), a predicate that
  /// reduces to TRUE proceeds with V = A, so purely-projective queries
  /// such as `SELECT DISTINCT * FROM R` are recognized (a sound
  /// strengthening the paper's theorem clearly admits).
  bool verbatim_line10 = false;
};

/// Outcome of Algorithm 1, with the step-by-step trace the paper walks
/// through in Example 5.
struct Algorithm1Result {
  bool yes = false;  ///< YES: duplicate elimination is unnecessary.
  /// Human-readable trace (one line per algorithm step).
  std::vector<std::string> trace;
  /// The final bound-column set V of the (single) conjunctive component.
  AttributeSet bound_columns;

  std::string TraceToString() const;
};

/// The bound-column closure at the heart of Algorithm 1 and of the
/// Theorem 2 test: starting from `initially_bound`, add every column
/// equated to a constant or host variable (Type 1), then close
/// transitively over column=column equalities (Type 2). Conjuncts that
/// are not atomic Type 1/2 equalities are deleted first (lines 6–9),
/// which only weakens the tested condition — sound.
///
/// `conjuncts` are the top-level conjuncts of the predicate (each may
/// still be a disjunction, which gets deleted). Returns the closed set V
/// and appends trace lines.
AttributeSet BoundColumnClosure(const std::vector<ExprPtr>& conjuncts,
                                const AttributeSet& initially_bound,
                                const AnalysisOptions& options,
                                std::vector<std::string>* trace,
                                bool* any_equality_kept);

/// Runs Algorithm 1 on a decomposed query specification: returns YES iff
/// for every FROM table some candidate key is contained in the closure
/// of the projection attributes. Implements lines 1–20 of the paper,
/// generalized to n tables (the paper's stated extension).
Result<Algorithm1Result> RunAlgorithm1(const SpecShape& shape,
                                       const Algorithm1Options& options = {});

}  // namespace uniqopt

#endif  // UNIQOPT_ANALYSIS_ALGORITHM1_H_
