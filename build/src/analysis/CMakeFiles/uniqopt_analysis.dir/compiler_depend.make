# Empty compiler generated dependencies file for uniqopt_analysis.
# This may be replaced when dependencies are built.
