#include "txn/dml_executor.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_set>

#include "common/string_util.h"
#include "parser/parser.h"

namespace uniqopt {
namespace txn {

namespace {

using KeyRowSet = std::unordered_set<Row, RowHash, RowNullSafeEqual>;

/// Aligns an evaluated value with a column: bare NULLs adopt the column
/// type and integer literals widen to DOUBLE columns, so key
/// projections hash identically no matter how the value was spelled.
Value CoerceToColumn(const Value& v, const Column& col) {
  if (v.is_null()) return Value::Null(col.type);
  if (col.type == TypeId::kDouble && v.type() == TypeId::kInteger) {
    return Value::Double(static_cast<double>(v.AsInteger()));
  }
  return v;
}

/// Enforces FOREIGN KEY ... RESTRICT against referencing children:
/// if any child row still references a key value this statement would
/// remove, the statement aborts. `removed_per_key[k]` holds the key
/// rows (projected in key-column order) leaving def().keys()[k].
/// `pending` carries the parent's uncommitted next version so a
/// self-referencing table is checked against the state the statement
/// would actually commit.
Status CheckNoChildReferences(
    Database* db, const Table* parent,
    const std::vector<KeyRowSet>& removed_per_key,
    const TableVersion& pending) {
  bool any_removed = false;
  for (const KeyRowSet& s : removed_per_key) any_removed |= !s.empty();
  if (!any_removed) return Status::OK();

  const std::string& parent_name = parent->def().name();
  for (const std::string& child_name : db->catalog().TableNames()) {
    UNIQOPT_ASSIGN_OR_RETURN(const Table* child, db->GetTable(child_name));
    for (const ForeignKeyConstraint& fk : child->def().foreign_keys()) {
      if (fk.ref_table != parent_name) continue;
      // Locate the referenced candidate key and the mapping from its
      // column order to the child's referencing columns.
      std::vector<size_t> ref_ordinals;
      for (const std::string& rc : fk.ref_columns) {
        UNIQOPT_ASSIGN_OR_RETURN(size_t ord,
                                 parent->def().ColumnOrdinal(rc));
        ref_ordinals.push_back(ord);
      }
      std::optional<size_t> key_index;
      const std::vector<KeyConstraint>& parent_keys = parent->def().keys();
      for (size_t k = 0; k < parent_keys.size(); ++k) {
        std::vector<size_t> a = parent_keys[k].columns;
        std::vector<size_t> b = ref_ordinals;
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        if (a == b) {
          key_index = k;
          break;
        }
      }
      if (!key_index.has_value()) {
        return Status::Internal("foreign key " + fk.name +
                                " does not match a key of " + fk.ref_table);
      }
      if (removed_per_key[*key_index].empty()) continue;
      // Child column positions in the parent key's column order.
      std::vector<size_t> child_cols;
      for (size_t parent_col : parent_keys[*key_index].columns) {
        size_t j = 0;
        while (ref_ordinals[j] != parent_col) ++j;
        child_cols.push_back(fk.columns[j]);
      }
      const bool self_reference = child_name == parent_name;
      TableSnapshot child_snap;
      const std::vector<Row>* child_rows;
      if (self_reference) {
        child_rows = &pending.rows;
      } else {
        child_snap = child->Snapshot();
        child_rows = &child_snap->rows;
      }
      for (const Row& row : *child_rows) {
        // MATCH SIMPLE: any NULL exempts the row.
        bool any_null = false;
        for (size_t c : child_cols) any_null = any_null || row[c].is_null();
        if (any_null) continue;
        Row probe = row.Project(child_cols);
        if (removed_per_key[*key_index].count(probe) > 0) {
          return Status::ConstraintViolation(
              "key " + probe.ToString() + " of " + parent_name +
              " is still referenced by " + fk.name + " on " + child_name);
        }
      }
    }
  }
  return Status::OK();
}

/// Rebuilds every unique index of `def` over `rows`; the first
/// `=!`-duplicate aborts (which is how UPDATE enforces key uniqueness).
Status RebuildIndexes(const TableDef& def, TableVersion* version) {
  version->indexes.clear();
  version->indexes.reserve(def.keys().size());
  for (const KeyConstraint& key : def.keys()) {
    UNIQOPT_ASSIGN_OR_RETURN(
        UniqueIndex index,
        UniqueIndex::Build(version->rows, key.columns, key.name,
                           def.name()));
    version->indexes.push_back(std::move(index));
  }
  return Status::OK();
}

Result<std::vector<Value>> MapNamedParams(
    const BoundDml& stmt,
    const std::vector<std::pair<std::string, Value>>& named_params) {
  std::vector<Value> params;
  params.reserve(stmt.host_vars.size());
  for (const HostVariable& hv : stmt.host_vars) {
    const Value* found = nullptr;
    for (const auto& [name, value] : named_params) {
      if (EqualsIgnoreCase(name, hv.name)) {
        found = &value;
        break;
      }
    }
    if (found == nullptr) {
      return Status::InvalidArgument("no value supplied for host variable :" +
                                     hv.name);
    }
    params.push_back(*found);
  }
  return params;
}

}  // namespace

std::string DmlResult::ToString() const {
  std::string out = DmlKindName(kind);
  if (kind == DmlKind::kCreateIndex) {
    out += " (" + std::to_string(rows_affected) + " rows validated)";
  } else {
    out += " " + std::to_string(rows_affected);
  }
  return out;
}

Result<DmlResult> DmlExecutor::Execute(const BoundDml& stmt,
                                       const std::vector<Value>& params) {
  if (params.size() != stmt.host_vars.size()) {
    return Status::InvalidArgument(
        "statement takes " + std::to_string(stmt.host_vars.size()) +
        " parameters, got " + std::to_string(params.size()));
  }
  switch (stmt.kind) {
    case DmlKind::kInsert:
      return ExecuteInsert(*stmt.insert, params);
    case DmlKind::kUpdate:
      return ExecuteUpdate(*stmt.update, params);
    case DmlKind::kDelete:
      return ExecuteDelete(*stmt.del, params);
    case DmlKind::kCreateIndex: {
      UNIQOPT_ASSIGN_OR_RETURN(
          size_t validated,
          db_->CreateUniqueIndex(stmt.create_index->table_name,
                                 stmt.create_index->index_name,
                                 stmt.create_index->columns));
      DmlResult result;
      result.kind = DmlKind::kCreateIndex;
      result.rows_affected = validated;
      result.catalog_version = db_->catalog().version();
      return result;
    }
  }
  return Status::Internal("unreachable DML kind");
}

Result<DmlResult> DmlExecutor::ExecuteSql(
    std::string_view sql,
    const std::vector<std::pair<std::string, Value>>& named_params) {
  UNIQOPT_ASSIGN_OR_RETURN(BoundDml stmt, BindDmlSql(db_, sql));
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Value> params,
                           MapNamedParams(stmt, named_params));
  return Execute(stmt, params);
}

Result<DmlResult> DmlExecutor::ExecuteInsert(const BoundInsert& stmt,
                                             const std::vector<Value>& params) {
  Table* table = stmt.table;
  const TableDef& def = table->def();
  const Schema& schema = def.schema();

  // Materialize the new rows first (expression evaluation needs no
  // locks: INSERT values are literals and host variables).
  static const Row kEmptyRow;
  std::vector<Row> new_rows;
  new_rows.reserve(stmt.rows.size());
  for (const std::vector<ExprPtr>& bound_row : stmt.rows) {
    std::vector<Value> values;
    values.reserve(schema.num_columns());
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      values.push_back(Value::Null(schema.column(i).type));
    }
    for (size_t i = 0; i < bound_row.size(); ++i) {
      size_t ord = stmt.target_ordinals[i];
      values[ord] = CoerceToColumn(bound_row[i]->Evaluate(kEmptyRow, params),
                                   schema.column(ord));
    }
    new_rows.emplace_back(std::move(values));
  }

  // Single-writer commit path: validate everything against the pending
  // version, publish only on full success.
  std::lock_guard<std::mutex> writer(table->writer_mutex());
  TableSnapshot snap = table->Snapshot();
  auto next = std::make_shared<TableVersion>(*snap);
  for (Row& row : new_rows) {
    UNIQOPT_RETURN_NOT_OK(table->Validate(row));
    UNIQOPT_RETURN_NOT_OK(table->ValidateForeignKeys(row));
    const size_t ordinal = next->rows.size();
    for (size_t k = 0; k < next->indexes.size(); ++k) {
      // Incremental maintenance doubles as uniqueness enforcement: a
      // duplicate against committed rows OR an earlier row of this same
      // statement aborts before anything is published.
      UNIQOPT_RETURN_NOT_OK(next->indexes[k].Insert(
          row, ordinal, def.keys()[k].name, def.name()));
    }
    next->rows.push_back(std::move(row));
  }
  table->CommitVersion(std::move(next));
  db_->catalog().BumpVersion();

  DmlResult result;
  result.kind = DmlKind::kInsert;
  result.rows_affected = new_rows.size();
  result.catalog_version = db_->catalog().version();
  return result;
}

Result<DmlResult> DmlExecutor::ExecuteUpdate(const BoundUpdate& stmt,
                                             const std::vector<Value>& params) {
  Table* table = stmt.table;
  const TableDef& def = table->def();
  const Schema& schema = def.schema();

  std::lock_guard<std::mutex> writer(table->writer_mutex());
  TableSnapshot snap = table->Snapshot();
  auto next = std::make_shared<TableVersion>();
  next->rows.reserve(snap->rows.size());

  size_t updated = 0;
  std::vector<bool> changed(snap->rows.size(), false);
  for (size_t i = 0; i < snap->rows.size(); ++i) {
    const Row& old_row = snap->rows[i];
    bool matches = stmt.where == nullptr ||
                   stmt.where->EvaluatePredicate(old_row, params) ==
                       Tribool::kTrue;
    if (!matches) {
      next->rows.push_back(old_row);
      continue;
    }
    // All sources evaluate against the OLD row before any assignment
    // lands (SQL read-before-write: SET A = B, B = A swaps).
    std::vector<Value> values = old_row.values();
    for (const auto& [ord, source] : stmt.assignments) {
      values[ord] = CoerceToColumn(source->Evaluate(old_row, params),
                                   schema.column(ord));
    }
    Row new_row(std::move(values));
    UNIQOPT_RETURN_NOT_OK(table->Validate(new_row));
    UNIQOPT_RETURN_NOT_OK(table->ValidateForeignKeys(new_row));
    next->rows.push_back(std::move(new_row));
    changed[i] = true;
    ++updated;
  }
  if (updated == 0) {
    DmlResult result;
    result.kind = DmlKind::kUpdate;
    result.catalog_version = db_->catalog().version();
    return result;  // no-op: nothing published, no version bump
  }

  // Key uniqueness over the whole pending state.
  UNIQOPT_RETURN_NOT_OK(RebuildIndexes(def, next.get()));

  // RESTRICT: key values this update removes must not be referenced.
  std::vector<KeyRowSet> removed_per_key(def.keys().size());
  for (size_t k = 0; k < def.keys().size(); ++k) {
    const std::vector<size_t>& key_cols = def.keys()[k].columns;
    for (size_t i = 0; i < snap->rows.size(); ++i) {
      if (!changed[i]) continue;
      Row old_key = snap->rows[i].Project(key_cols);
      if (!next->indexes[k].Contains(old_key)) {
        removed_per_key[k].insert(std::move(old_key));
      }
    }
  }
  UNIQOPT_RETURN_NOT_OK(
      CheckNoChildReferences(db_, table, removed_per_key, *next));

  table->CommitVersion(std::move(next));
  db_->catalog().BumpVersion();

  DmlResult result;
  result.kind = DmlKind::kUpdate;
  result.rows_affected = updated;
  result.catalog_version = db_->catalog().version();
  return result;
}

Result<DmlResult> DmlExecutor::ExecuteDelete(const BoundDelete& stmt,
                                             const std::vector<Value>& params) {
  Table* table = stmt.table;
  const TableDef& def = table->def();

  std::lock_guard<std::mutex> writer(table->writer_mutex());
  TableSnapshot snap = table->Snapshot();
  auto next = std::make_shared<TableVersion>();
  next->rows.reserve(snap->rows.size());

  std::vector<KeyRowSet> removed_per_key(def.keys().size());
  size_t deleted = 0;
  for (const Row& row : snap->rows) {
    bool matches = stmt.where == nullptr ||
                   stmt.where->EvaluatePredicate(row, params) ==
                       Tribool::kTrue;
    if (!matches) {
      next->rows.push_back(row);
      continue;
    }
    // A deleted key row cannot survive elsewhere (keys are unique), so
    // every projection of a deleted row leaves the table.
    for (size_t k = 0; k < def.keys().size(); ++k) {
      removed_per_key[k].insert(row.Project(def.keys()[k].columns));
    }
    ++deleted;
  }
  if (deleted == 0) {
    DmlResult result;
    result.kind = DmlKind::kDelete;
    result.catalog_version = db_->catalog().version();
    return result;
  }

  UNIQOPT_RETURN_NOT_OK(RebuildIndexes(def, next.get()));
  UNIQOPT_RETURN_NOT_OK(
      CheckNoChildReferences(db_, table, removed_per_key, *next));

  table->CommitVersion(std::move(next));
  db_->catalog().BumpVersion();

  DmlResult result;
  result.kind = DmlKind::kDelete;
  result.rows_affected = deleted;
  result.catalog_version = db_->catalog().version();
  return result;
}

}  // namespace txn
}  // namespace uniqopt
