// Experiment X1/X2 (§5.1, Examples 1 & 2): cost of a redundant DISTINCT
// and the speedup from removing it via Theorem 1.
//
// Series:
//  - Example1_WithDistinct_Sort:   π_Dist via sort (the cost the paper
//    says optimizers should avoid), growing with the result size;
//  - Example1_WithDistinct_Hash:   π_Dist via hashing (a cheaper
//    duplicate-elimination baseline — still avoidable work);
//  - Example1_DistinctRemoved:     the rewritten plan (Algorithm 1 says
//    YES);
//  - Example2_DistinctRequired:    the projection onto SNAME — the
//    rewrite must NOT fire; sort cost is the price of correctness.
//
// Expected shape (paper): removal wins by the full sort cost; the gap
// grows superlinearly in |result| for the sort baseline.

#include <benchmark/benchmark.h>

#include "analysis/uniqueness.h"
#include "bench_util.h"

namespace uniqopt {
namespace bench {
namespace {

constexpr const char* kExample1 =
    "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
constexpr const char* kExample2 =
    "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";

void RunPlanBenchmark(benchmark::State& state, const char* sql,
                      bool rewrite,
                      PhysicalOptions::DistinctStrategy distinct) {
  const Database& db =
      GetSupplierDb(static_cast<size_t>(state.range(0)), 20);
  PlanPtr plan = MustBind(db, sql);
  if (rewrite) plan = MustRewrite(plan);
  PhysicalOptions physical;
  physical.distinct = distinct;
  ExecStats stats;
  size_t rows = 0;
  for (auto _ : state) {
    rows = MustExecute(plan, db, physical, &stats);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["sort_cmp"] = static_cast<double>(stats.sort_comparisons);
  state.counters["rows_sorted"] = static_cast<double>(stats.rows_sorted);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}

void BM_Example1_WithDistinct_Sort(benchmark::State& state) {
  RunPlanBenchmark(state, kExample1, /*rewrite=*/false,
                   PhysicalOptions::DistinctStrategy::kSort);
}
BENCHMARK(BM_Example1_WithDistinct_Sort)->Arg(100)->Arg(1000)->Arg(5000);

void BM_Example1_WithDistinct_Hash(benchmark::State& state) {
  RunPlanBenchmark(state, kExample1, /*rewrite=*/false,
                   PhysicalOptions::DistinctStrategy::kHash);
}
BENCHMARK(BM_Example1_WithDistinct_Hash)->Arg(100)->Arg(1000)->Arg(5000);

void BM_Example1_DistinctRemoved(benchmark::State& state) {
  // Sanity: the rewrite must fire for Example 1.
  const Database& db = GetSupplierDb(100, 20);
  auto verdict = AnalyzeDistinct(MustBind(db, kExample1));
  UNIQOPT_DCHECK(verdict.distinct_unnecessary);
  RunPlanBenchmark(state, kExample1, /*rewrite=*/true,
                   PhysicalOptions::DistinctStrategy::kSort);
}
BENCHMARK(BM_Example1_DistinctRemoved)->Arg(100)->Arg(1000)->Arg(5000);

void BM_Example2_DistinctRequired(benchmark::State& state) {
  // Sanity: the rewrite must NOT fire for Example 2 (SNAME projection).
  const Database& db = GetSupplierDb(100, 20);
  auto verdict = AnalyzeDistinct(MustBind(db, kExample2));
  UNIQOPT_DCHECK(!verdict.distinct_unnecessary);
  RunPlanBenchmark(state, kExample2, /*rewrite=*/true,
                   PhysicalOptions::DistinctStrategy::kSort);
}
BENCHMARK(BM_Example2_DistinctRequired)->Arg(100)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace bench
}  // namespace uniqopt

UNIQOPT_BENCH_MAIN();
