#include "common/status.h"

namespace uniqopt {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kLimitExceeded:
      return "LimitExceeded";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace uniqopt
