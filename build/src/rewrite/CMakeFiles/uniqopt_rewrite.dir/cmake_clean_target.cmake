file(REMOVE_RECURSE
  "libuniqopt_rewrite.a"
)
