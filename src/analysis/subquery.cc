#include "analysis/subquery.h"

#include "analysis/algorithm1.h"
#include "analysis/shape.h"
#include "expr/normalize.h"

namespace uniqopt {

Result<SubqueryVerdict> TestSubqueryAtMostOneMatch(
    const ExistsNode& node, const AnalysisOptions& options) {
  SubqueryVerdict verdict;
  if (node.negated()) {
    return Status::InvalidArgument(
        "Theorem 2 applies to positive existential subqueries");
  }
  size_t outer_width = node.outer()->schema().num_columns();

  // Decompose the inner plan into base tables and inner-local predicates.
  UNIQOPT_ASSIGN_OR_RETURN(SpecShape inner_shape,
                           ExtractProductShape(node.sub()));

  // Assemble the full C_S ∧ C_{R,S}: inner-local predicates shifted into
  // the combined (outer ⊕ inner) frame, plus the correlation predicate.
  std::vector<ExprPtr> conjuncts;
  for (const ExprPtr& pred : inner_shape.predicates) {
    Result<ExprPtr> cnf =
        ToCnf(ShiftColumns(pred, outer_width), options.normalize_budget);
    if (!cnf.ok()) {
      verdict.at_most_one_match = false;
      verdict.trace.push_back("CNF budget exceeded; condition not proven");
      return verdict;
    }
    for (const ExprPtr& c : FlattenAnd(*cnf)) conjuncts.push_back(c);
  }
  {
    Result<ExprPtr> cnf = ToCnf(node.correlation(), options.normalize_budget);
    if (!cnf.ok()) {
      verdict.at_most_one_match = false;
      verdict.trace.push_back("CNF budget exceeded; condition not proven");
      return verdict;
    }
    for (const ExprPtr& c : FlattenAnd(*cnf)) conjuncts.push_back(c);
  }

  // Outer columns are constants for each candidate outer row.
  AttributeSet initially_bound = AttributeSet::AllUpTo(outer_width);
  verdict.trace.push_back("outer columns bound: " +
                          initially_bound.ToString());
  AttributeSet bound = BoundColumnClosure(conjuncts, initially_bound, options,
                                          &verdict.trace, nullptr);
  verdict.trace.push_back("closure V = " + bound.ToString());

  // Every inner base table must have a covered candidate key.
  for (const SpecShape::BaseTable& bt : inner_shape.tables) {
    const TableDef& table = bt.get->table();
    if (!table.HasAnyKey()) {
      verdict.at_most_one_match = false;
      verdict.trace.push_back("inner table " + table.name() +
                              " has no declared key");
      return verdict;
    }
    bool covered = false;
    for (const KeyConstraint& key : table.keys()) {
      if (key.kind == KeyKind::kUnique && !options.use_unique_keys) continue;
      AttributeSet key_set = AttributeSet::FromVector(key.columns)
                                 .Shifted(outer_width + bt.offset);
      if (key_set.IsSubsetOf(bound)) {
        verdict.trace.push_back("key " + key.name + " of inner table " +
                                table.name() + " covered");
        covered = true;
        break;
      }
    }
    if (!covered) {
      verdict.at_most_one_match = false;
      verdict.trace.push_back("no key of inner table " + table.name() +
                              " is bound: more than one match possible");
      return verdict;
    }
  }
  verdict.at_most_one_match = true;
  verdict.trace.push_back(
      "every inner key bound: at most one inner row matches");
  return verdict;
}

}  // namespace uniqopt
