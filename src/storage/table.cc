#include "storage/table.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/string_util.h"
#include "obs/advisor.h"
#include "parser/ast.h"
#include "parser/parser.h"
#include "plan/binder.h"

namespace uniqopt {

std::shared_ptr<TableVersion> Table::NewVersion(const TableDef* def) {
  auto version = std::make_shared<TableVersion>();
  version->indexes.reserve(def->keys().size());
  for (const KeyConstraint& key : def->keys()) {
    version->indexes.emplace_back(key.columns);
  }
  return version;
}

TableSnapshot Table::Snapshot() const {
  std::lock_guard<std::mutex> lock(version_mu_);
  return version_;
}

void Table::CommitVersion(std::shared_ptr<TableVersion> next) {
  std::lock_guard<std::mutex> lock(version_mu_);
  version_ = std::move(next);
}

Status Table::Validate(const Row& row) const {
  const Schema& schema = def_->schema();
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table " +
        def_->name() + " arity " + std::to_string(schema.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = schema.column(i);
    const Value& v = row[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return Status::ConstraintViolation("NULL in NOT NULL column " +
                                           col.name + " of " + def_->name());
      }
      continue;
    }
    if (!Value::Comparable(v.type(), col.type)) {
      return Status::TypeMismatch("value " + v.ToString() +
                                  " incompatible with column " + col.name +
                                  " of type " + TypeIdToString(col.type));
    }
  }
  // CHECK constraints are true-interpreted: only FALSE rejects.
  static const std::vector<Value> kNoParams;
  for (const CheckConstraint& check : def_->checks()) {
    Tribool t = check.predicate->EvaluatePredicate(row, kNoParams);
    if (t == Tribool::kFalse) {
      return Status::ConstraintViolation(
          "row " + row.ToString() + " violates CHECK (" +
          (check.sql_text.empty() ? check.predicate->ToString()
                                  : check.sql_text) +
          ") on " + def_->name());
    }
  }
  return Status::OK();
}

bool Table::ContainsKeyValue(size_t key_index, const Row& key_row) const {
  TableSnapshot snap = Snapshot();
  if (key_index >= snap->indexes.size()) return false;
  return snap->indexes[key_index].Contains(key_row);
}

Status Table::ValidateForeignKeys(const Row& row) const {
  if (database_ == nullptr) return Status::OK();
  for (const ForeignKeyConstraint& fk : def_->foreign_keys()) {
    // MATCH SIMPLE: a NULL in any referencing column exempts the row.
    bool any_null = false;
    for (size_t c : fk.columns) any_null = any_null || row[c].is_null();
    if (any_null) continue;

    UNIQOPT_ASSIGN_OR_RETURN(const Table* parent,
                             database_->GetTable(fk.ref_table));
    // Locate the referenced candidate key and its index.
    std::vector<size_t> ref_ordinals;
    for (const std::string& rc : fk.ref_columns) {
      UNIQOPT_ASSIGN_OR_RETURN(size_t ord, parent->def().ColumnOrdinal(rc));
      ref_ordinals.push_back(ord);
    }
    std::optional<size_t> key_index;
    const std::vector<KeyConstraint>& parent_keys = parent->def().keys();
    for (size_t k = 0; k < parent_keys.size(); ++k) {
      std::vector<size_t> a = parent_keys[k].columns;
      std::vector<size_t> b = ref_ordinals;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a == b) {
        key_index = k;
        break;
      }
    }
    if (!key_index.has_value()) {
      return Status::Internal("foreign key " + fk.name +
                              " does not match a key of " + fk.ref_table);
    }
    // Build the probe row in the parent key's column order.
    std::vector<Value> probe;
    for (size_t parent_col : parent_keys[*key_index].columns) {
      size_t j = 0;
      while (ref_ordinals[j] != parent_col) ++j;
      probe.push_back(row[fk.columns[j]]);
    }
    if (!parent->ContainsKeyValue(*key_index, Row(std::move(probe)))) {
      return Status::ConstraintViolation(
          "row " + row.ToString() + " violates " + fk.name +
          ": no matching row in " + fk.ref_table);
    }
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  UNIQOPT_RETURN_NOT_OK(Validate(row));
  UNIQOPT_RETURN_NOT_OK(ValidateForeignKeys(row));
  std::lock_guard<std::mutex> vlock(version_mu_);
  // Probe every index before touching any — a multi-key violation must
  // leave the version untouched.
  for (size_t k = 0; k < version_->indexes.size(); ++k) {
    Row key_row = row.Project(version_->indexes[k].key_columns());
    if (version_->indexes[k].Contains(key_row)) {
      return Status::ConstraintViolation(
          "duplicate key " + key_row.ToString() + " for " +
          def_->keys()[k].name + " on " + def_->name());
    }
  }
  // use_count()==1 means nobody holds a pinned snapshot (new pins are
  // blocked while we hold version_mu_), so bulk loads append in place;
  // otherwise copy-on-write keeps every pinned reader consistent.
  std::shared_ptr<TableVersion> target = version_;
  if (version_.use_count() > 2) {  // version_ + target
    target = std::make_shared<TableVersion>(*version_);
  }
  const size_t ordinal = target->rows.size();
  for (size_t k = 0; k < target->indexes.size(); ++k) {
    UNIQOPT_RETURN_NOT_OK(target->indexes[k].Insert(
        row, ordinal, def_->keys()[k].name, def_->name()));
  }
  target->rows.push_back(std::move(row));
  version_ = std::move(target);
  return Status::OK();
}

void Table::Clear() {
  std::lock_guard<std::mutex> writer(writer_mu_);
  std::lock_guard<std::mutex> vlock(version_mu_);
  version_ = NewVersion(def_);
}

Status Database::CreateTable(TableDef def) {
  UNIQOPT_RETURN_NOT_OK(catalog_.AddTable(std::move(def)));
  // The catalog owns the definition; point the instance at it.
  const std::string name = catalog_.TableNames().back();
  UNIQOPT_ASSIGN_OR_RETURN(const TableDef* stored, catalog_.GetTable(name));
  tables_.push_back(std::make_unique<Table>(stored));
  tables_.back()->SetDatabase(this);
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  std::string key = ToUpperAscii(name);
  // Drop the instance before the definition: the Table points into the
  // catalog-owned TableDef.
  bool found = false;
  for (auto it = tables_.begin(); it != tables_.end(); ++it) {
    if ((*it)->def().name() == key) {
      tables_.erase(it);
      found = true;
      break;
    }
  }
  Status st = catalog_.DropTable(name);
  if (!found && st.ok()) {
    return Status::Internal("table instance missing for " + name);
  }
  if (st.ok()) {
    // Stale suggestions for a dropped table would otherwise survive and
    // `\advisor replay`/`adopt` would reference a missing table.
    obs::AdvisorStore::Global().PurgeTable(key);
  }
  return st;
}

Result<size_t> Database::CreateUniqueIndex(
    const std::string& table_name, const std::string& index_name,
    const std::vector<std::string>& columns) {
  UNIQOPT_ASSIGN_OR_RETURN(Table* table, GetTable(table_name));
  std::lock_guard<std::mutex> writer(table->writer_mutex());
  UNIQOPT_ASSIGN_OR_RETURN(TableDef* def,
                           catalog_.GetTableMutable(table_name));
  std::vector<size_t> ordinals;
  for (const std::string& cn : columns) {
    UNIQOPT_ASSIGN_OR_RETURN(size_t ord, def->ColumnOrdinal(cn));
    ordinals.push_back(ord);
  }
  // Validate existing rows before declaring anything: a duplicate under
  // `=!` means the data cannot support the key, and the statement must
  // leave both catalog and table untouched.
  TableSnapshot snap = table->Snapshot();
  UNIQOPT_ASSIGN_OR_RETURN(
      UniqueIndex index,
      UniqueIndex::Build(snap->rows, ordinals, index_name, def->name()));
  UNIQOPT_RETURN_NOT_OK(def->AddNamedUniqueKey(index_name, columns));
  auto next = std::make_shared<TableVersion>(*snap);
  next->indexes.push_back(std::move(index));
  table->CommitVersion(std::move(next));
  catalog_.BumpVersion();
  return snap->rows.size();
}

Status Database::ExecuteDdl(std::string_view sql) {
  UNIQOPT_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  if (stmt->create_table != nullptr) {
    UNIQOPT_ASSIGN_OR_RETURN(TableDef def,
                             BuildTableDef(*stmt->create_table));
    return CreateTable(std::move(def));
  }
  if (stmt->drop_table != nullptr) {
    return DropTable(stmt->drop_table->table_name);
  }
  if (stmt->create_index != nullptr) {
    return CreateUniqueIndex(stmt->create_index->table_name,
                             stmt->create_index->index_name,
                             stmt->create_index->columns)
        .status();
  }
  return Status::InvalidArgument(
      "expected a CREATE TABLE, DROP TABLE, or CREATE UNIQUE INDEX "
      "statement");
}

Result<Table*> Database::GetTable(const std::string& name) {
  std::string key = ToUpperAscii(name);
  for (auto& t : tables_) {
    if (t->def().name() == key) return t.get();
  }
  return Status::NotFound("table not found: " + name);
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  std::string key = ToUpperAscii(name);
  for (const auto& t : tables_) {
    if (t->def().name() == key) return t.get();
  }
  return Status::NotFound("table not found: " + name);
}

}  // namespace uniqopt
