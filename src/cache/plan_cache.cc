#include "cache/plan_cache.h"

#include <cstdio>

#include "obs/metrics.h"

namespace uniqopt {
namespace cache {

PlanCache::PlanCache(PlanCacheOptions options)
    : options_(options),
      lru_(LruOptions{options.shards, options.capacity,
                      options.byte_budget}) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  hits_ = &reg.GetCounter("cache.hits");
  misses_ = &reg.GetCounter("cache.misses");
  evictions_ = &reg.GetCounter("cache.evictions");
  invalidations_ = &reg.GetCounter("cache.invalidations");
  bytes_ = &reg.GetGauge("cache.bytes");
  entries_ = &reg.GetGauge("cache.entries");
}

PlanCache::EntryPtr PlanCache::Get(uint64_t fingerprint,
                                   uint64_t catalog_version) {
  if (!options_.enabled) return nullptr;
  // Lazy invalidation: the first lookup after a catalog bump purges the
  // now-unreachable entries. The CAS makes exactly one caller pay.
  uint64_t seen = observed_version_.load(std::memory_order_relaxed);
  if (catalog_version > seen &&
      observed_version_.compare_exchange_strong(seen, catalog_version,
                                                std::memory_order_relaxed)) {
    size_t dropped = lru_.InvalidateBefore(catalog_version);
    if (dropped > 0) {
      invalidations_->Increment(dropped);
      bytes_->Set(lru_.Stats().bytes);
      entries_->Set(lru_.Stats().entries);
    }
  }
  EntryPtr entry = lru_.Get(fingerprint);
  (entry != nullptr ? hits_ : misses_)->Increment();
  return entry;
}

void PlanCache::Put(uint64_t fingerprint, uint64_t catalog_version,
                    EntryPtr entry, size_t bytes) {
  if (!options_.enabled || entry == nullptr) return;
  size_t evicted =
      lru_.Put(fingerprint, std::move(entry), bytes, catalog_version);
  if (evicted > 0) evictions_->Increment(evicted);
  LruStats stats = lru_.Stats();
  bytes_->Set(stats.bytes);
  entries_->Set(stats.entries);
}

void PlanCache::Clear() {
  lru_.Clear();
  bytes_->Set(lru_.Stats().bytes);
  entries_->Set(lru_.Stats().entries);
}

std::string PlanCache::ToText() const {
  LruStats s = Stats();
  std::string out = "plan cache: ";
  out += options_.enabled ? "enabled" : "disabled";
  out += " (" + std::to_string(options_.shards) + " shards, capacity " +
         std::to_string(options_.capacity) + " entries, budget " +
         std::to_string(options_.byte_budget) + " bytes)\n";
  uint64_t lookups = s.hits + s.misses;
  char ratio[32] = "n/a";
  if (lookups > 0) {
    std::snprintf(ratio, sizeof(ratio), "%.1f%%",
                  100.0 * static_cast<double>(s.hits) /
                      static_cast<double>(lookups));
  }
  out += "  hits=" + std::to_string(s.hits) +
         " misses=" + std::to_string(s.misses) + " (hit ratio " + ratio +
         ")\n";
  out += "  entries=" + std::to_string(s.entries) +
         " bytes=" + std::to_string(s.bytes) +
         " evictions=" + std::to_string(s.evictions) +
         " invalidations=" + std::to_string(s.invalidations) + "\n";
  return out;
}

}  // namespace cache
}  // namespace uniqopt
