#ifndef UNIQOPT_TYPES_ROW_H_
#define UNIQOPT_TYPES_ROW_H_

#include <cstddef>
#include <string>
#include <vector>

#include "types/value.h"

namespace uniqopt {

/// A tuple of values. Rows carry no schema; position i corresponds to
/// column i of the producing operator's Schema.
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_.at(i); }
  Value& at(size_t i) { return values_.at(i); }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  void Append(Value v) { values_.push_back(std::move(v)); }
  const std::vector<Value>& values() const { return values_; }

  /// Concatenation, used by the extended Cartesian product.
  static Row Concat(const Row& left, const Row& right);

  /// Row projected onto `indexes` (in the given order).
  Row Project(const std::vector<size_t>& indexes) const;

  /// The paper's tuple equivalence (Eq. 1): every column equal under `=!`.
  bool NullSafeEquals(const Row& other) const;

  /// Hash consistent with NullSafeEquals.
  size_t Hash() const;

  /// Lexicographic total order using Value::Compare (NULLs first).
  int Compare(const Row& other) const;

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

inline bool operator==(const Row& a, const Row& b) {
  return a.NullSafeEquals(b);
}
inline bool operator!=(const Row& a, const Row& b) { return !(a == b); }
inline bool operator<(const Row& a, const Row& b) { return a.Compare(b) < 0; }

/// Functors for hash containers keyed by Row under `=!` semantics.
struct RowHash {
  size_t operator()(const Row& r) const { return r.Hash(); }
};
struct RowNullSafeEqual {
  bool operator()(const Row& a, const Row& b) const {
    return a.NullSafeEquals(b);
  }
};

}  // namespace uniqopt

#endif  // UNIQOPT_TYPES_ROW_H_
