file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_parser.dir/ast.cc.o"
  "CMakeFiles/uniqopt_parser.dir/ast.cc.o.d"
  "CMakeFiles/uniqopt_parser.dir/lexer.cc.o"
  "CMakeFiles/uniqopt_parser.dir/lexer.cc.o.d"
  "CMakeFiles/uniqopt_parser.dir/parser.cc.o"
  "CMakeFiles/uniqopt_parser.dir/parser.cc.o.d"
  "libuniqopt_parser.a"
  "libuniqopt_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
