#ifndef UNIQOPT_EXEC_PROFILE_H_
#define UNIQOPT_EXEC_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace uniqopt {

/// Measured behaviour of one operator slot during a profiled execution.
struct OpProfile {
  std::string name;
  int depth = 0;           ///< nesting depth in the operator tree
  uint64_t rows_out = 0;   ///< rows this operator produced
  uint64_t next_calls = 0; ///< Next() invocations (rows_out + 1 usually)
  uint64_t time_ns = 0;    ///< wall time inside Open/Next/Close, children
                           ///< included (self time derivable from them)
};

/// Measured behaviour of one parallel worker during a profiled
/// execution: morsels it claimed, rows it produced, wall time spent in
/// its pipeline.
struct WorkerProfile {
  uint64_t morsels = 0;
  uint64_t rows = 0;
  uint64_t busy_ns = 0;
};

/// Per-operator instrumentation for one execution: slots are registered
/// in preorder during lowering, so `ops[i]`'s direct children are the
/// following entries at depth + 1 (until a shallower entry).
class ExecProfile {
 public:
  /// Adds a slot at `depth`; the name is attached after lowering.
  size_t Reserve(int depth);
  void SetName(size_t slot, std::string name);

  const std::vector<OpProfile>& ops() const { return ops_; }
  OpProfile& op(size_t slot) { return ops_.at(slot); }

  /// Rows pulled by slot i from its direct children (sum of their
  /// rows_out); 0 for leaves.
  uint64_t RowsIn(size_t slot) const;
  /// Time in slot i excluding time attributed to its direct children.
  uint64_t SelfTimeNs(size_t slot) const;

  /// Attaches the parallel-execution section: one entry per worker.
  /// ToText then renders a Gather header with per-worker morsel/row
  /// counts above the (serial) operator slots.
  void SetParallel(unsigned dop, size_t batch_size,
                   std::vector<WorkerProfile> workers);
  unsigned parallel_dop() const { return parallel_dop_; }
  const std::vector<WorkerProfile>& workers() const { return workers_; }

  void Clear() {
    ops_.clear();
    workers_.clear();
    parallel_dop_ = 0;
    parallel_batch_size_ = 0;
  }

  /// EXPLAIN ANALYZE rendering: one indented line per operator with
  /// rows in/out and total/self time.
  std::string ToText() const;

 private:
  std::vector<OpProfile> ops_;
  unsigned parallel_dop_ = 0;
  size_t parallel_batch_size_ = 0;
  std::vector<WorkerProfile> workers_;
};

/// Decorator that meters a wrapped operator into an ExecProfile slot.
/// Used by the lowering layer when a profile is requested; adds two
/// clock reads per Next() call, nothing when profiling is off (the
/// decorator simply isn't inserted).
class ProfileOp final : public Operator {
 public:
  ProfileOp(OperatorPtr child, ExecProfile* profile, size_t slot);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  void Close() override;
  std::string name() const override { return child_->name(); }

 private:
  OperatorPtr child_;
  ExecProfile* profile_;
  size_t slot_;
};

}  // namespace uniqopt

#endif  // UNIQOPT_EXEC_PROFILE_H_
