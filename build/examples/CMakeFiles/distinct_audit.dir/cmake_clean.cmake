file(REMOVE_RECURSE
  "CMakeFiles/distinct_audit.dir/distinct_audit.cc.o"
  "CMakeFiles/distinct_audit.dir/distinct_audit.cc.o.d"
  "distinct_audit"
  "distinct_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
