#include "types/value.h"

#include <cmath>
#include <functional>
#include <ostream>

#include "common/hash.h"
#include "common/logging.h"

namespace uniqopt {

const char* TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kBoolean:
      return "BOOLEAN";
    case TypeId::kInteger:
      return "INTEGER";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "VARCHAR";
  }
  return "?";
}

double Value::AsNumeric() const {
  UNIQOPT_DCHECK(!is_null());
  if (type_ == TypeId::kInteger) return static_cast<double>(AsInteger());
  UNIQOPT_DCHECK(type_ == TypeId::kDouble);
  return AsDouble();
}

namespace {

bool IsNumeric(TypeId t) {
  return t == TypeId::kInteger || t == TypeId::kDouble;
}

}  // namespace

bool Value::Comparable(TypeId a, TypeId b) {
  if (a == b) return true;
  return IsNumeric(a) && IsNumeric(b);
}

Tribool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return Tribool::kUnknown;
  return FromBool(Compare(other) == 0);
}

Tribool Value::SqlLess(const Value& other) const {
  if (is_null() || other.is_null()) return Tribool::kUnknown;
  return FromBool(Compare(other) < 0);
}

Tribool Value::SqlLessEqual(const Value& other) const {
  if (is_null() || other.is_null()) return Tribool::kUnknown;
  return FromBool(Compare(other) <= 0);
}

bool Value::NullSafeEquals(const Value& other) const {
  if (is_null() && other.is_null()) return true;
  if (is_null() != other.is_null()) return false;
  return Compare(other) == 0;
}

int Value::Compare(const Value& other) const {
  // NULL sorts before every non-NULL value; NULLs tie with each other.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  UNIQOPT_DCHECK_MSG(Comparable(type_, other.type_),
                     "comparing incomparable types");
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    if (type_ == TypeId::kInteger && other.type_ == TypeId::kInteger) {
      int64_t a = AsInteger();
      int64_t b = other.AsInteger();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsNumeric();
    double b = other.AsNumeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  switch (type_) {
    case TypeId::kBoolean: {
      int a = AsBoolean() ? 1 : 0;
      int b = other.AsBoolean() ? 1 : 0;
      return a - b;
    }
    case TypeId::kString:
      return AsString().compare(other.AsString());
    default:
      break;
  }
  UNIQOPT_DCHECK_MSG(false, "unreachable type in Compare");
  return 0;
}

size_t Value::Hash() const {
  if (is_null()) return 0x9d2c5680;  // All NULLs hash alike (=! semantics).
  switch (type_) {
    case TypeId::kBoolean:
      return AsBoolean() ? 0x517cc1b7 : 0x27220a95;
    case TypeId::kInteger:
      return std::hash<int64_t>{}(AsInteger());
    case TypeId::kDouble: {
      double d = AsDouble();
      // Hash integral doubles like the equal integer, so mixed-type equal
      // values collide as `Compare` demands.
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case TypeId::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type_) {
    case TypeId::kBoolean:
      return AsBoolean() ? "TRUE" : "FALSE";
    case TypeId::kInteger:
      return std::to_string(AsInteger());
    case TypeId::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case TypeId::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace uniqopt
