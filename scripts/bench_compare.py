#!/usr/bin/env python3
"""Diff a benchmark --metrics-json dump against a checked-in baseline.

Both files use the stable export schema emitted by obs::ToMetricsJson
(bench_util.h --metrics-json and the Prometheus exporter render from the
same snapshot):

    {"metrics": [
      {"name": "...", "type": "counter", "value": 3},
      {"name": "...", "type": "histogram", "count": ..., "sum": ...,
       "min": ..., "max": ..., "mean": ..., "p50": ..., "p90": ...,
       "p99": ..., "buckets": [{"le": ..., "count": ...}, ...]}]}

Two regression classes fail the gate (exit code 1):

 * latency: a `.ns` histogram whose p50 grew by more than
   --latency-tolerance percent over baseline (histograms with a baseline
   p50 under --min-latency-ns are skipped as noise);
 * rewrite counts: a `rewrite.rule.<Rule>.fired` counter whose firing
   ratio (fired / considered, iteration-count invariant) dropped by more
   than --ratio-tolerance percent, or that stopped firing entirely while
   the baseline had firings;
 * cache hit ratio: any `<prefix>.hits` counter with a `<prefix>.misses`
   sibling whose hit ratio (hits / (hits + misses), iteration-count
   invariant) fell more than --cache-hit-tolerance percentage points
   below the baseline ratio — a cache that silently stopped hitting is
   a perf regression even if no single latency histogram trips.

Missing-in-current metrics that the baseline gates on are regressions
too: a deleted counter must be removed from the baseline deliberately.
"""

import argparse
import fnmatch
import json
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "metrics" not in doc:
        raise SystemExit(
            f"{path}: not a stable-schema metrics dump (no 'metrics' key)")
    out = {}
    for m in doc["metrics"]:
        out[m["name"]] = m
    return out


def histogram_latency(metric):
    """Representative latency of a histogram sample: p50, mean fallback."""
    if metric.get("count", 0) == 0:
        return None
    p50 = metric.get("p50", 0)
    return p50 if p50 > 0 else metric.get("mean", 0)


def firing_ratio(metrics, fired_name):
    """fired / considered for a rewrite.rule counter, None if unknowable."""
    fired = metrics[fired_name]["value"]
    considered_name = fired_name.replace(".fired", ".considered")
    considered = metrics.get(considered_name, {}).get("value", 0)
    if considered == 0:
        return None
    return fired / considered


def hit_ratio(metrics, hits_name):
    """hits / (hits + misses) for a cache counter pair, None if unknowable."""
    hits = metrics[hits_name]["value"]
    misses_name = hits_name[: -len(".hits")] + ".misses"
    misses = metrics.get(misses_name, {}).get("value")
    if misses is None or hits + misses == 0:
        return None
    return hits / (hits + misses)


def compare(baseline, current, args):
    regressions = []
    checked = {"latency": 0, "rewrite": 0, "cache": 0}

    for name, base in sorted(baseline.items()):
        if base.get("type") != "histogram" or not name.endswith(".ns"):
            continue
        base_lat = histogram_latency(base)
        if base_lat is None or base_lat < args.min_latency_ns:
            continue
        cur = current.get(name)
        if cur is None:
            regressions.append(
                f"latency {name}: present in baseline, missing in current")
            continue
        cur_lat = histogram_latency(cur)
        if cur_lat is None:
            regressions.append(
                f"latency {name}: baseline has samples, current has none")
            continue
        checked["latency"] += 1
        limit = base_lat * (1 + args.latency_tolerance / 100.0)
        if cur_lat > limit:
            regressions.append(
                f"latency {name}: p50 {cur_lat:.0f}ns > {limit:.0f}ns "
                f"(baseline {base_lat:.0f}ns + {args.latency_tolerance}%)")

    for name, base in sorted(baseline.items()):
        if base.get("type") != "counter":
            continue
        if not fnmatch.fnmatch(name, "rewrite.rule.*.fired"):
            continue
        if base["value"] == 0:
            continue
        cur = current.get(name)
        if cur is None:
            regressions.append(
                f"rewrite {name}: fired in baseline, missing in current")
            continue
        checked["rewrite"] += 1
        if cur["value"] == 0:
            regressions.append(
                f"rewrite {name}: fired {base['value']}x in baseline, "
                f"stopped firing")
            continue
        base_ratio = firing_ratio(baseline, name)
        cur_ratio = firing_ratio(current, name)
        if base_ratio is None or cur_ratio is None:
            continue  # no considered counter: can't normalize iterations
        floor = base_ratio * (1 - args.ratio_tolerance / 100.0)
        if cur_ratio < floor:
            regressions.append(
                f"rewrite {name}: firing ratio {cur_ratio:.3f} < "
                f"{floor:.3f} (baseline {base_ratio:.3f} - "
                f"{args.ratio_tolerance}%)")

    for name, base in sorted(baseline.items()):
        if base.get("type") != "counter" or not name.endswith(".hits"):
            continue
        base_ratio = hit_ratio(baseline, name)
        if base_ratio is None:
            continue
        if name not in current:
            regressions.append(
                f"cache {name}: present in baseline, missing in current")
            continue
        cur_ratio = hit_ratio(current, name)
        if cur_ratio is None:
            regressions.append(
                f"cache {name}: baseline has traffic, current has none")
            continue
        checked["cache"] += 1
        floor = base_ratio - args.cache_hit_tolerance / 100.0
        if cur_ratio < floor:
            regressions.append(
                f"cache {name}: hit ratio {cur_ratio:.3f} < {floor:.3f} "
                f"(baseline {base_ratio:.3f} - "
                f"{args.cache_hit_tolerance} points)")

    return checked, regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--latency-tolerance", type=float, default=50.0,
                        help="max p50 growth in percent (default 50)")
    parser.add_argument("--ratio-tolerance", type=float, default=10.0,
                        help="max firing-ratio drop in percent (default 10)")
    parser.add_argument("--min-latency-ns", type=float, default=500.0,
                        help="skip histograms with baseline p50 below this")
    parser.add_argument("--cache-hit-tolerance", type=float, default=15.0,
                        help="max hit-ratio drop in percentage points "
                             "(default 15)")
    parser.add_argument("--summary", default=None,
                        help="write a JSON verdict summary to this path")
    args = parser.parse_args()

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)
    checked, regressions = compare(baseline, current, args)

    print(f"bench_compare: {args.current} vs {args.baseline}")
    print(f"  checked {checked['latency']} latency histogram(s), "
          f"{checked['rewrite']} rewrite counter(s), "
          f"{checked['cache']} cache hit ratio(s)")
    for r in regressions:
        print(f"  REGRESSION: {r}")
    verdict = "FAIL" if regressions else "OK"
    print(f"  verdict: {verdict}")

    if args.summary:
        with open(args.summary, "w") as f:
            json.dump(
                {
                    "baseline": args.baseline,
                    "current": args.current,
                    "checked": checked,
                    "regressions": regressions,
                    "ok": not regressions,
                },
                f,
                indent=2,
            )
            f.write("\n")

    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
