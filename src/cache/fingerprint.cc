#include "cache/fingerprint.h"

#include <utility>
#include <vector>

#include "parser/lexer.h"

namespace uniqopt {
namespace cache {

namespace {

/// Canonical spelling of one token. Strings are re-quoted (with ''
/// escaping) so `'A'` the literal and `A` the identifier cannot
/// canonicalize to the same text.
std::string TokenSpelling(const Token& token) {
  switch (token.type) {
    case TokenType::kString: {
      std::string out = "'";
      for (char c : token.text) {
        out += c;
        if (c == '\'') out += '\'';
      }
      out += "'";
      return out;
    }
    case TokenType::kHostVar:
      return ":" + token.text;
    default:
      return token.text;
  }
}

bool IsLiteral(const Token& token) {
  return token.type == TokenType::kInteger ||
         token.type == TokenType::kDouble ||
         token.type == TokenType::kString;
}

}  // namespace

Result<CanonicalSql> CanonicalizeSql(std::string_view sql) {
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  CanonicalSql out;
  out.text.reserve(sql.size());
  out.shape.reserve(sql.size());
  for (const Token& token : tokens) {
    if (token.type == TokenType::kEndOfInput) break;
    if (!out.text.empty()) {
      out.text += ' ';
      out.shape += ' ';
    }
    std::string spelling = TokenSpelling(token);
    if (IsLiteral(token)) {
      ++out.num_literals;
      out.shape += '?';
    } else {
      out.shape += spelling;
    }
    out.text += spelling;
  }
  return out;
}

uint64_t Fnv1a(std::string_view s, uint64_t seed) {
  uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= UINT64_C(0x100000001b3);
  }
  return h;
}

uint64_t Fnv1aMix(uint64_t seed, uint64_t value) {
  uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xff;
    h *= UINT64_C(0x100000001b3);
  }
  return h;
}

uint64_t FingerprintSql(const CanonicalSql& canonical,
                        uint64_t catalog_version,
                        const FingerprintOptions& options) {
  uint64_t h = Fnv1a(options.parameterize_literals ? canonical.shape
                                                   : canonical.text);
  h = Fnv1aMix(h, catalog_version);
  h = Fnv1aMix(h, options.salt);
  return h;
}

}  // namespace cache
}  // namespace uniqopt
