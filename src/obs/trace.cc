#include "obs/trace.h"

#include <chrono>

namespace uniqopt {
namespace obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_thread_id{1};

// Per-thread nesting state: each thread has its own span stack, so spans
// from concurrent sessions never interleave their depth accounting.
thread_local int tl_depth = 0;
thread_local uint64_t tl_parent_id = 0;
thread_local uint64_t tl_thread_id = 0;

uint64_t ThreadId() {
  if (tl_thread_id == 0) {
    tl_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tl_thread_id;
}

}  // namespace

std::string TraceEvent::ToString() const {
  std::string out(static_cast<size_t>(depth) * 2, ' ');
  out += name;
  out += " (" + std::to_string(duration_ns / 1000) + "us)";
  for (const auto& [key, value] : attrs) {
    out += " " + key + "=" + value;
  }
  return out;
}

void CollectingSink::OnSpanEnd(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> CollectingSink::TakeEvents() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

std::vector<TraceEvent> CollectingSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void CollectingSink::TrimTo(size_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() > max_events) {
    events_.erase(events_.begin(),
                  events_.end() - static_cast<ptrdiff_t>(max_events));
  }
}

std::string CollectingSink::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const TraceEvent& event : events_) {
    out += event.ToString() + "\n";
  }
  return out;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(TraceSink* sink) {
  sink_.store(sink, std::memory_order_release);
  enabled_.store(sink != nullptr, std::memory_order_release);
}

void Tracer::Disable() {
  enabled_.store(false, std::memory_order_release);
  sink_.store(nullptr, std::memory_order_release);
}

Span::Span(Tracer& tracer, const char* name) {
  if (!tracer.enabled()) return;  // inert: no clock read, no allocation
  active_ = true;
  tracer_ = &tracer;
  event_.name = name;
  event_.start_ns = NowNs();
  event_.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  event_.parent_id = tl_parent_id;
  event_.depth = tl_depth;
  event_.tid = ThreadId();
  tl_parent_id = event_.id;
  ++tl_depth;
}

Span::~Span() {
  if (!active_) return;
  --tl_depth;
  tl_parent_id = event_.parent_id;
  event_.duration_ns = NowNs() - event_.start_ns;
  TraceSink* sink = tracer_->sink();
  if (sink != nullptr) sink->OnSpanEnd(std::move(event_));
}

void Span::AddAttr(const std::string& key, const std::string& value) {
  if (active_) event_.attrs.emplace_back(key, value);
}

void Span::AddAttr(const std::string& key, const char* value) {
  if (active_) event_.attrs.emplace_back(key, std::string(value));
}

void Span::AddAttr(const std::string& key, uint64_t value) {
  if (active_) event_.attrs.emplace_back(key, std::to_string(value));
}

void Span::AddAttr(const std::string& key, int value) {
  if (active_) event_.attrs.emplace_back(key, std::to_string(value));
}

void Span::AddAttr(const std::string& key, bool value) {
  if (active_) event_.attrs.emplace_back(key, value ? "true" : "false");
}

}  // namespace obs
}  // namespace uniqopt
