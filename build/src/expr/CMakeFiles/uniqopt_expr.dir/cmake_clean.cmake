file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_expr.dir/equality.cc.o"
  "CMakeFiles/uniqopt_expr.dir/equality.cc.o.d"
  "CMakeFiles/uniqopt_expr.dir/expr.cc.o"
  "CMakeFiles/uniqopt_expr.dir/expr.cc.o.d"
  "CMakeFiles/uniqopt_expr.dir/normalize.cc.o"
  "CMakeFiles/uniqopt_expr.dir/normalize.cc.o.d"
  "libuniqopt_expr.a"
  "libuniqopt_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
