// Tests for the plan → navigation-strategy compiler (§6.2 end to end):
// join plans run child-driven, EXISTS plans (the Theorem 2 rewrite's
// output) run parent-driven; both produce identical rows.

#include <gtest/gtest.h>

#include "oodb/oo_translator.h"
#include "rewrite/rewriter.h"
#include "test_util.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

using oodb::OoProgram;
using oodb::OoStrategy;
using oodb::RunOoProgram;
using oodb::TranslateOoPlan;

class OoTranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(MakeTestSupplierDatabase(&db_));
    auto store = oodb::BuildSupplierObjectStore(db_);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
  }

  PlanPtr Bind(const std::string& sql) {
    Binder binder(&db_.catalog());
    auto bound = binder.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return bound->plan;
  }

  Database db_;
  std::unique_ptr<oodb::ObjectStore> store_;
};

constexpr const char* kExample11 =
    "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO BETWEEN 10 AND 20 AND S.SNO = P.SNO AND P.PNO = 4";

TEST_F(OoTranslatorTest, JoinPlanCompilesChildDriven) {
  auto program = TranslateOoPlan(*store_, Bind(kExample11));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->strategy, OoStrategy::kChildDriven);
  ASSERT_TRUE(program->parent_lo.has_value());
  EXPECT_EQ(program->parent_lo->AsInteger(), 10);
  EXPECT_EQ(program->parent_hi->AsInteger(), 20);
  ASSERT_TRUE(program->child_pno.has_value());
  EXPECT_EQ(program->child_pno->AsInteger(), 4);

  auto result = RunOoProgram(*store_, *program);
  EXPECT_EQ(result.rows.size(), 11u);
  EXPECT_GT(result.stats.pointer_derefs, 0u);
}

TEST_F(OoTranslatorTest, RewrittenPlanCompilesParentDriven) {
  PlanPtr plan = Bind(kExample11);
  RewriteOptions opts;
  opts.join_to_subquery = true;  // navigational policy (§6)
  opts.subquery_to_join = false;
  opts.subquery_to_distinct_join = false;
  opts.join_elimination = false;
  auto rewritten = RewritePlan(plan, opts);
  ASSERT_TRUE(rewritten.ok());
  ASSERT_TRUE(rewritten->Applied(RewriteRuleId::kJoinToSubquery))
      << rewritten->plan->ToString();

  auto program = TranslateOoPlan(*store_, rewritten->plan);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->strategy, OoStrategy::kParentDriven);

  // Both strategies must agree with relational execution.
  auto original_program = TranslateOoPlan(*store_, plan);
  ASSERT_TRUE(original_program.ok());
  auto child = RunOoProgram(*store_, *original_program);
  auto parent = RunOoProgram(*store_, *program);
  EXPECT_TRUE(MultisetEquals(child.rows, parent.rows));

  ExecContext ctx;
  auto relational = ExecutePlan(plan, db_, &ctx);
  ASSERT_TRUE(relational.ok());
  EXPECT_TRUE(MultisetEquals(parent.rows, *relational));

  // The selective range makes the parent-driven plan cheaper.
  EXPECT_LT(parent.stats.EstimatedIoCost(), child.stats.EstimatedIoCost());
  EXPECT_EQ(parent.stats.pointer_derefs, 0u);
}

TEST_F(OoTranslatorTest, HostVariablesResolveAtRunTime) {
  PlanPtr plan = Bind(
      "SELECT ALL S.SNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO BETWEEN :LO AND :HI AND S.SNO = P.SNO AND "
      "P.PNO = :PN");
  auto program = TranslateOoPlan(*store_, plan);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->parent_lo_host.has_value());
  // Parameter slots assigned in first-use order: :LO, :HI, :PN.
  auto result = RunOoProgram(
      *store_, *program,
      {Value::Integer(5), Value::Integer(7), Value::Integer(2)});
  EXPECT_EQ(result.rows.size(), 3u);  // suppliers 5, 6, 7
}

TEST_F(OoTranslatorTest, ProgramToStringReadable) {
  auto program = TranslateOoPlan(*store_, Bind(kExample11));
  ASSERT_TRUE(program.ok());
  std::string s = program->ToString();
  EXPECT_NE(s.find("child-driven"), std::string::npos) << s;
  EXPECT_NE(s.find("PNO = 4"), std::string::npos) << s;
}

TEST_F(OoTranslatorTest, UnsupportedShapes) {
  // Projection from the child side.
  EXPECT_FALSE(TranslateOoPlan(
                   *store_,
                   Bind("SELECT P.PNO FROM SUPPLIER S, PARTS P "
                        "WHERE S.SNO = P.SNO AND P.PNO = 1"))
                   .ok());
  // Agents class is not part of the Example 11 family.
  EXPECT_FALSE(TranslateOoPlan(
                   *store_,
                   Bind("SELECT S.SNO FROM SUPPLIER S, AGENTS A "
                        "WHERE S.SNO = A.SNO"))
                   .ok());
  // Disjunctive predicate.
  EXPECT_FALSE(TranslateOoPlan(
                   *store_,
                   Bind("SELECT S.SNO FROM SUPPLIER S, PARTS P "
                        "WHERE S.SNO = P.SNO AND (P.PNO = 1 OR "
                        "P.PNO = 2)"))
                   .ok());
}

}  // namespace
}  // namespace uniqopt
