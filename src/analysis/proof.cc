#include "analysis/proof.h"

namespace uniqopt {

const char* ConjunctDispositionName(ConjunctDisposition d) {
  switch (d) {
    case ConjunctDisposition::kKeptType1:
      return "keep (Type 1)";
    case ConjunctDisposition::kKeptType2:
      return "keep (Type 2)";
    case ConjunctDisposition::kDeletedDisjunction:
      return "delete (disjunction)";
    case ConjunctDisposition::kDeletedNonEquality:
      return "delete (non-equality)";
    case ConjunctDisposition::kDeletedBySwitch:
      return "delete (switch off)";
  }
  return "?";
}

std::string ProofTrace::NameOf(size_t position) const {
  if (position < column_names.size() && !column_names[position].empty()) {
    return column_names[position];
  }
  return "col" + std::to_string(position);
}

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out = "{";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  out += "}";
  return out;
}

}  // namespace

std::string ProofTrace::ToText() const {
  if (!recorded) {
    return "no structured proof recorded for this verdict\n";
  }
  std::string out;
  out += "conjuncts:\n";
  if (conjuncts.empty()) out += "  (none)\n";
  for (const ProofConjunct& c : conjuncts) {
    out += "  " + std::string(ConjunctDispositionName(c.disposition)) + ": " +
           c.text + "\n";
  }
  out += "initially bound: " + JoinNames(initially_bound) + "\n";
  out += "closure steps:\n";
  if (closure_steps.empty()) out += "  (none)\n";
  for (const ProofClosureStep& s : closure_steps) {
    out += "  + " + s.column_name + " via " + s.via +
           (s.round == 0 ? std::string(" (Type 1)")
                         : " (closure round " + std::to_string(s.round) + ")") +
           "\n";
  }
  out += "V = " + JoinNames(closure) + "\n";
  out += "candidate keys:\n";
  if (keys.empty()) out += "  (none checked)\n";
  for (const ProofKeyOutcome& k : keys) {
    out += "  " + k.key_name + " of " + k.table;
    if (!k.alias.empty() && k.alias != k.table) out += " (" + k.alias + ")";
    out += " " + JoinNames(k.key_columns);
    if (k.covered) {
      out += ": covered\n";
    } else {
      out += ": NOT covered, missing " + JoinNames(k.missing_columns) + "\n";
    }
  }
  out += "conclusion: " + conclusion + "\n";
  return out;
}

}  // namespace uniqopt
