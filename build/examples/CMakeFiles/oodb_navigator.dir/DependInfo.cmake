
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/oodb_navigator.cc" "examples/CMakeFiles/oodb_navigator.dir/oodb_navigator.cc.o" "gcc" "examples/CMakeFiles/oodb_navigator.dir/oodb_navigator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ims/CMakeFiles/uniqopt_ims.dir/DependInfo.cmake"
  "/root/repo/build/src/oodb/CMakeFiles/uniqopt_oodb.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/uniqopt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/uniqopt/CMakeFiles/uniqopt_facade.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/uniqopt_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/uniqopt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/uniqopt_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/uniqopt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/uniqopt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/uniqopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/uniqopt_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/uniqopt_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/uniqopt_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/uniqopt_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uniqopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
