#include <gtest/gtest.h>

#include "expr/equality.h"
#include "expr/expr.h"
#include "expr/normalize.h"

namespace uniqopt {
namespace {

ExprPtr Col(size_t i, TypeId type = TypeId::kInteger) {
  return Expr::ColumnRef(i, "c" + std::to_string(i), type);
}

ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kEq, std::move(a), std::move(b));
}

TEST(ExprTest, EvaluateComparisons) {
  Row row({Value::Integer(5), Value::Integer(7),
           Value::Null(TypeId::kInteger)});
  std::vector<Value> params;
  ExprPtr lt = Expr::Compare(CompareOp::kLt, Col(0), Col(1));
  EXPECT_EQ(lt->EvaluatePredicate(row, params), Tribool::kTrue);
  ExprPtr eq_null = Eq(Col(0), Col(2));
  EXPECT_EQ(eq_null->EvaluatePredicate(row, params), Tribool::kUnknown);
  ExprPtr isnull = Expr::IsNull(Col(2));
  EXPECT_EQ(isnull->EvaluatePredicate(row, params), Tribool::kTrue);
  ExprPtr isnotnull = Expr::IsNotNull(Col(2));
  EXPECT_EQ(isnotnull->EvaluatePredicate(row, params), Tribool::kFalse);
}

TEST(ExprTest, HostVariableEvaluation) {
  Row row({Value::Integer(5)});
  std::vector<Value> params = {Value::Integer(5)};
  ExprPtr eq = Eq(Col(0), Expr::HostVar(0, "X", TypeId::kInteger));
  EXPECT_EQ(eq->EvaluatePredicate(row, params), Tribool::kTrue);
  params[0] = Value::Null(TypeId::kInteger);
  EXPECT_EQ(eq->EvaluatePredicate(row, params), Tribool::kUnknown);
}

TEST(ExprTest, AndOrFlattenAndSimplify) {
  ExprPtr a = Eq(Col(0), Expr::Literal(Value::Integer(1)));
  ExprPtr b = Eq(Col(1), Expr::Literal(Value::Integer(2)));
  // TRUE is dropped from AND; nesting flattens.
  ExprPtr nested = Expr::MakeAnd({Expr::MakeAnd({a, b}), TrueLiteral()});
  EXPECT_EQ(nested->kind(), ExprKind::kAnd);
  EXPECT_EQ(nested->num_children(), 2u);
  // Single-child AND collapses.
  EXPECT_EQ(Expr::MakeAnd({a})->kind(), ExprKind::kComparison);
  // Empty AND is TRUE; empty OR is FALSE.
  EXPECT_TRUE(Expr::MakeAnd({})->IsTrueLiteral());
  EXPECT_TRUE(Expr::MakeOr({})->IsFalseLiteral());
}

TEST(ExprTest, ShortCircuitKleene) {
  // FALSE AND UNKNOWN = FALSE; TRUE OR UNKNOWN = TRUE.
  Row row({Value::Null(TypeId::kBoolean)});
  std::vector<Value> params;
  ExprPtr unknown = Col(0, TypeId::kBoolean);
  EXPECT_EQ(Expr::MakeAnd({FalseLiteral(), unknown})
                ->EvaluatePredicate(row, params),
            Tribool::kFalse);
  EXPECT_EQ(Expr::MakeOr({TrueLiteral(), unknown})
                ->EvaluatePredicate(row, params),
            Tribool::kTrue);
  EXPECT_EQ(Expr::MakeAnd({TrueLiteral(), unknown})
                ->EvaluatePredicate(row, params),
            Tribool::kUnknown);
}

TEST(NormalizeTest, NnfPushesNegationIntoComparisons) {
  ExprPtr expr = Expr::MakeNot(Eq(Col(0), Col(1)));
  ExprPtr nnf = ToNnf(expr);
  ASSERT_EQ(nnf->kind(), ExprKind::kComparison);
  EXPECT_EQ(nnf->compare_op(), CompareOp::kNe);
  // Double negation cancels.
  ExprPtr dbl = ToNnf(Expr::MakeNot(Expr::MakeNot(Eq(Col(0), Col(1)))));
  EXPECT_EQ(dbl->compare_op(), CompareOp::kEq);
  // De Morgan.
  ExprPtr dm = ToNnf(Expr::MakeNot(
      Expr::MakeAnd({Eq(Col(0), Col(1)), Expr::IsNull(Col(2))})));
  ASSERT_EQ(dm->kind(), ExprKind::kOr);
  EXPECT_EQ(dm->child(0)->compare_op(), CompareOp::kNe);
  EXPECT_EQ(dm->child(1)->kind(), ExprKind::kIsNotNull);
}

TEST(NormalizeTest, NnfPreservesThreeValuedSemantics) {
  // ¬(a = b) ⇔ a <> b in 3VL: both are UNKNOWN when an operand is NULL.
  Row null_row({Value::Null(TypeId::kInteger), Value::Integer(1)});
  Row eq_row({Value::Integer(1), Value::Integer(1)});
  Row ne_row({Value::Integer(1), Value::Integer(2)});
  std::vector<Value> params;
  ExprPtr original = Expr::MakeNot(Eq(Col(0), Col(1)));
  ExprPtr nnf = ToNnf(original);
  for (const Row& row : {null_row, eq_row, ne_row}) {
    EXPECT_EQ(original->EvaluatePredicate(row, params),
              nnf->EvaluatePredicate(row, params));
  }
}

TEST(NormalizeTest, CnfDistributes) {
  // a OR (b AND c)  ⇒  (a OR b) AND (a OR c).
  ExprPtr a = Eq(Col(0), Expr::Literal(Value::Integer(1)));
  ExprPtr b = Eq(Col(1), Expr::Literal(Value::Integer(2)));
  ExprPtr c = Eq(Col(2), Expr::Literal(Value::Integer(3)));
  auto cnf = ToCnf(Expr::MakeOr({a, Expr::MakeAnd({b, c})}));
  ASSERT_TRUE(cnf.ok());
  ASSERT_EQ((*cnf)->kind(), ExprKind::kAnd);
  EXPECT_EQ((*cnf)->num_children(), 2u);
  for (const ExprPtr& clause : (*cnf)->children()) {
    EXPECT_EQ(clause->kind(), ExprKind::kOr);
  }
}

TEST(NormalizeTest, DnfDistributes) {
  // (a OR b) AND c  ⇒  (a AND c) OR (b AND c).
  ExprPtr a = Eq(Col(0), Expr::Literal(Value::Integer(1)));
  ExprPtr b = Eq(Col(1), Expr::Literal(Value::Integer(2)));
  ExprPtr c = Eq(Col(2), Expr::Literal(Value::Integer(3)));
  auto dnf = ToDnf(Expr::MakeAnd({Expr::MakeOr({a, b}), c}));
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ((*dnf)->kind(), ExprKind::kOr);
  EXPECT_EQ((*dnf)->num_children(), 2u);
}

TEST(NormalizeTest, BudgetGuardsAgainstBlowup) {
  // (a1 OR b1) AND (a2 OR b2) AND ... has 2^n DNF terms.
  std::vector<ExprPtr> conjuncts;
  for (size_t i = 0; i < 40; ++i) {
    conjuncts.push_back(Expr::MakeOr(
        {Eq(Col(2 * i), Expr::Literal(Value::Integer(1))),
         Eq(Col(2 * i + 1), Expr::Literal(Value::Integer(2)))}));
  }
  auto dnf = ToDnf(Expr::MakeAnd(std::move(conjuncts)), /*budget=*/1024);
  ASSERT_FALSE(dnf.ok());
  EXPECT_EQ(dnf.status().code(), StatusCode::kLimitExceeded);
}

TEST(NormalizeTest, RoundTripPreservesTruthTables) {
  // Exhaustively check CNF/DNF equivalence over all boolean assignments
  // (including NULL) of three columns.
  ExprPtr a = Eq(Col(0), Expr::Literal(Value::Integer(1)));
  ExprPtr b = Expr::IsNull(Col(1));
  ExprPtr c = Expr::Compare(CompareOp::kLt, Col(2),
                            Expr::Literal(Value::Integer(5)));
  ExprPtr expr = Expr::MakeOr(
      {Expr::MakeAnd({a, Expr::MakeNot(b)}), Expr::MakeNot(c)});
  auto cnf = ToCnf(expr);
  auto dnf = ToDnf(expr);
  ASSERT_TRUE(cnf.ok());
  ASSERT_TRUE(dnf.ok());
  std::vector<Value> params;
  std::vector<Value> domain = {Value::Integer(1), Value::Integer(5),
                               Value::Null(TypeId::kInteger)};
  for (const Value& v0 : domain) {
    for (const Value& v1 : domain) {
      for (const Value& v2 : domain) {
        Row row({v0, v1, v2});
        Tribool expected = expr->EvaluatePredicate(row, params);
        EXPECT_EQ((*cnf)->EvaluatePredicate(row, params), expected);
        EXPECT_EQ((*dnf)->EvaluatePredicate(row, params), expected);
      }
    }
  }
}

TEST(EqualityTest, ClassifiesAtoms) {
  EqualityAtom t1 = ClassifyAtom(Eq(Col(3), Expr::Literal(Value::Integer(7))));
  EXPECT_EQ(t1.type, AtomType::kType1ColumnConstant);
  EXPECT_EQ(t1.column, 3u);
  ASSERT_TRUE(t1.constant.has_value());

  // Reversed operand order normalizes.
  EqualityAtom rev =
      ClassifyAtom(Eq(Expr::Literal(Value::Integer(7)), Col(3)));
  EXPECT_EQ(rev.type, AtomType::kType1ColumnConstant);
  EXPECT_EQ(rev.column, 3u);

  EqualityAtom hv = ClassifyAtom(Eq(Col(2), Expr::HostVar(0, "X",
                                                          TypeId::kInteger)));
  EXPECT_EQ(hv.type, AtomType::kType1ColumnConstant);
  ASSERT_TRUE(hv.host_var.has_value());

  EqualityAtom t2 = ClassifyAtom(Eq(Col(1), Col(4)));
  EXPECT_EQ(t2.type, AtomType::kType2ColumnColumn);

  EXPECT_EQ(ClassifyAtom(Expr::Compare(CompareOp::kLt, Col(0), Col(1))).type,
            AtomType::kOther);
  EXPECT_EQ(ClassifyAtom(Expr::IsNull(Col(0))).type, AtomType::kOther);
  EXPECT_EQ(ClassifyAtom(Expr::Compare(CompareOp::kNe, Col(0), Col(1))).type,
            AtomType::kOther);
}

TEST(EqualityTest, ExtractFromConjunction) {
  ExprPtr pred = Expr::MakeAnd(
      {Eq(Col(0), Col(1)), Eq(Col(2), Expr::Literal(Value::Integer(5))),
       Expr::Compare(CompareOp::kGt, Col(3),
                     Expr::Literal(Value::Integer(0)))});
  bool has_other = false;
  std::vector<EqualityAtom> atoms = ExtractEqualities(pred, &has_other);
  EXPECT_EQ(atoms.size(), 2u);
  EXPECT_TRUE(has_other);
}

TEST(ExprTest, RemapAndShiftColumns) {
  ExprPtr pred = Eq(Col(0), Col(2));
  ExprPtr shifted = ShiftColumns(pred, 5);
  EXPECT_EQ(shifted->child(0)->column_index(), 5u);
  EXPECT_EQ(shifted->child(1)->column_index(), 7u);
  ExprPtr remapped = RemapColumns(pred, {9, 0, 4});
  EXPECT_EQ(remapped->child(0)->column_index(), 9u);
  EXPECT_EQ(remapped->child(1)->column_index(), 4u);
}

TEST(ExprTest, CollectColumnsAndEquals) {
  ExprPtr pred = Expr::MakeAnd({Eq(Col(0), Col(2)), Expr::IsNull(Col(7))});
  std::vector<size_t> cols;
  pred->CollectColumns(&cols);
  EXPECT_EQ(cols.size(), 3u);
  EXPECT_EQ(pred->MaxColumnIndexPlusOne(), 8u);
  EXPECT_TRUE(pred->Equals(*pred));
  ExprPtr other = Expr::MakeAnd({Eq(Col(0), Col(3)), Expr::IsNull(Col(7))});
  EXPECT_FALSE(pred->Equals(*other));
}

TEST(ExprTest, ToStringReadable) {
  ExprPtr pred = Expr::MakeAnd(
      {Eq(Expr::ColumnRef(0, "S.SNO", TypeId::kInteger),
          Expr::ColumnRef(5, "P.SNO", TypeId::kInteger)),
       Eq(Expr::ColumnRef(9, "P.COLOR", TypeId::kString),
          Expr::Literal(Value::String("RED")))});
  EXPECT_EQ(pred->ToString(), "(S.SNO = P.SNO AND P.COLOR = 'RED')");
}

}  // namespace
}  // namespace uniqopt
