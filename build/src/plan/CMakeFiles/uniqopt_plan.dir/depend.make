# Empty dependencies file for uniqopt_plan.
# This may be replaced when dependencies are built.
