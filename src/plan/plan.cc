#include "plan/plan.h"

#include "common/logging.h"

namespace uniqopt {

std::string PlanNode::ToString() const {
  std::string out;
  AppendTo(&out, 0);
  return out;
}

void PlanNode::Indent(std::string* out, int indent) {
  for (int i = 0; i < indent; ++i) *out += "  ";
}

PlanPtr GetNode::Make(const TableDef* table, std::string alias) {
  UNIQOPT_DCHECK(table != nullptr);
  Schema schema = table->schema().WithQualifier(alias);
  return PlanPtr(new GetNode(table, std::move(alias), std::move(schema)));
}

const PlanPtr& GetNode::child(size_t) const {
  static const PlanPtr kNull;
  UNIQOPT_DCHECK_MSG(false, "GetNode has no children");
  return kNull;
}

void GetNode::AppendTo(std::string* out, int indent) const {
  Indent(out, indent);
  *out += "Get " + table_->name();
  if (alias_ != table_->name()) *out += " AS " + alias_;
  *out += "\n";
}

PlanPtr SelectNode::Make(PlanPtr input, ExprPtr predicate) {
  UNIQOPT_DCHECK(input != nullptr && predicate != nullptr);
  Schema schema = input->schema();
  return PlanPtr(
      new SelectNode(std::move(input), std::move(predicate), std::move(schema)));
}

void SelectNode::AppendTo(std::string* out, int indent) const {
  Indent(out, indent);
  *out += "Select [" + predicate_->ToString() + "]\n";
  input_->AppendTo(out, indent + 1);
}

PlanPtr ProjectNode::Make(PlanPtr input, DuplicateMode mode,
                          std::vector<size_t> columns) {
  UNIQOPT_DCHECK(input != nullptr);
  Schema schema = input->schema().Project(columns);
  return PlanPtr(new ProjectNode(std::move(input), mode, std::move(columns),
                                 std::move(schema)));
}

void ProjectNode::AppendTo(std::string* out, int indent) const {
  Indent(out, indent);
  *out += mode_ == DuplicateMode::kDist ? "Project DISTINCT [" : "Project [";
  const Schema& s = schema();
  for (size_t i = 0; i < s.num_columns(); ++i) {
    if (i > 0) *out += ", ";
    *out += s.column(i).QualifiedName();
  }
  *out += "]\n";
  input_->AppendTo(out, indent + 1);
}

PlanPtr ProductNode::Make(PlanPtr left, PlanPtr right) {
  UNIQOPT_DCHECK(left != nullptr && right != nullptr);
  Schema schema = Schema::Concat(left->schema(), right->schema());
  return PlanPtr(
      new ProductNode(std::move(left), std::move(right), std::move(schema)));
}

void ProductNode::AppendTo(std::string* out, int indent) const {
  Indent(out, indent);
  *out += "Product\n";
  left_->AppendTo(out, indent + 1);
  right_->AppendTo(out, indent + 1);
}

PlanPtr ExistsNode::Make(PlanPtr outer, PlanPtr sub, ExprPtr correlation,
                         bool negated) {
  UNIQOPT_DCHECK(outer != nullptr && sub != nullptr && correlation != nullptr);
  Schema schema = outer->schema();
  return PlanPtr(new ExistsNode(std::move(outer), std::move(sub),
                                std::move(correlation), negated,
                                std::move(schema)));
}

void ExistsNode::AppendTo(std::string* out, int indent) const {
  Indent(out, indent);
  *out += negated_ ? "NotExists [" : "Exists [";
  *out += correlation_->ToString() + "]\n";
  outer_->AppendTo(out, indent + 1);
  sub_->AppendTo(out, indent + 1);
}

Result<PlanPtr> SetOpNode::Make(SetOpAlgebra op, DuplicateMode mode,
                                PlanPtr left, PlanPtr right) {
  UNIQOPT_DCHECK(left != nullptr && right != nullptr);
  if (!left->schema().UnionCompatible(right->schema())) {
    return Status::BindError(
        "set operation operands are not union-compatible: " +
        left->schema().ToString() + " vs " + right->schema().ToString());
  }
  Schema schema = left->schema();
  // A column of the result can be NULL if either side's column can.
  std::vector<Column> cols = schema.columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    cols[i].nullable =
        cols[i].nullable || right->schema().column(i).nullable;
  }
  return PlanPtr(new SetOpNode(op, mode, std::move(left), std::move(right),
                               Schema(std::move(cols))));
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

TypeId AggregateNode::ResultType(AggFunc func, TypeId arg) {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return TypeId::kInteger;
    case AggFunc::kAvg:
      return TypeId::kDouble;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg;
  }
  return arg;
}

PlanPtr AggregateNode::Make(PlanPtr input, std::vector<size_t> group_columns,
                            std::vector<AggregateItem> aggregates) {
  UNIQOPT_DCHECK(input != nullptr);
  std::vector<Column> cols;
  for (size_t g : group_columns) {
    cols.push_back(input->schema().column(g));
  }
  for (const AggregateItem& agg : aggregates) {
    Column c;
    c.qualifier = "";
    c.name = agg.name;
    TypeId arg = agg.func == AggFunc::kCountStar
                     ? TypeId::kInteger
                     : input->schema().column(agg.arg_column).type;
    c.type = ResultType(agg.func, arg);
    // COUNT is never NULL; other aggregates are NULL for all-NULL groups.
    c.nullable = agg.func != AggFunc::kCountStar && agg.func != AggFunc::kCount;
    cols.push_back(std::move(c));
  }
  return PlanPtr(new AggregateNode(std::move(input), std::move(group_columns),
                                   std::move(aggregates),
                                   Schema(std::move(cols))));
}

void AggregateNode::AppendTo(std::string* out, int indent) const {
  Indent(out, indent);
  *out += "Aggregate [";
  for (size_t i = 0; i < group_columns_.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += input_->schema().column(group_columns_[i]).QualifiedName();
  }
  *out += "][";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += aggregates_[i].name;
  }
  *out += "]\n";
  input_->AppendTo(out, indent + 1);
}

void SetOpNode::AppendTo(std::string* out, int indent) const {
  Indent(out, indent);
  *out += op_ == SetOpAlgebra::kIntersect ? "Intersect" : "Except";
  if (mode_ == DuplicateMode::kAll) *out += " ALL";
  *out += "\n";
  left_->AppendTo(out, indent + 1);
  right_->AppendTo(out, indent + 1);
}

}  // namespace uniqopt
