#ifndef UNIQOPT_OBS_RECORDER_H_
#define UNIQOPT_OBS_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace uniqopt {
namespace obs {

/// Everything worth keeping about one query after the fact: what ran,
/// what the optimizer decided (and why), what it cost. One record per
/// Optimizer::Execute / gateway program / navigation strategy.
struct QueryRecord {
  uint64_t id = 0;          ///< assigned by the recorder, monotonically
  std::string source;       ///< "optimizer", "ims.gateway", "oodb.nav"
  std::string query;        ///< SQL text or compiled-program summary
  /// FNV-1a over the optimized plan's canonical printed form; equal
  /// hashes ⇒ structurally identical plans (cache keys, \history dedup).
  uint64_t plan_hash = 0;
  /// Whether preparation was served from the plan cache (its phase_ns
  /// carries the original cold prepare's timings in that case) —
  /// \slow and \history separate cold from cache-served prepares on it.
  bool cache_hit = false;
  /// Per-phase latencies, pipeline order (parse, bind, analyze,
  /// rewrite, cost, execute — whichever ran).
  std::vector<std::pair<std::string, uint64_t>> phase_ns;
  /// Rewrite verdicts: (rule name, description) per applied rewrite.
  std::vector<std::pair<std::string, std::string>> rewrites;
  /// One-line summary of the uniqueness analysis / ProofTrace verdict.
  std::string proof_summary;
  /// One-line rollup of the post-optimization verifier (empty when the
  /// verifier did not run for this query).
  std::string verify_summary;
  uint64_t verify_violations = 0;
  /// Equivalence-prover verdict tallies for this query's rewrites (all
  /// zero when the prover did not run or nothing was rewritten).
  uint64_t equiv_proven = 0;
  uint64_t equiv_unproven = 0;
  uint64_t equiv_refuted = 0;
  uint64_t rows_out = 0;
  uint64_t rows_scanned = 0;
  /// Per-operator profile text when the run was metered (EXPLAIN
  /// ANALYZE); empty otherwise.
  std::string profile_text;
  /// Near-miss advisor lines ("table: fact (goal)") for proofs that
  /// almost fired on this query; empty when every proof succeeded.
  std::vector<std::string> near_misses;
  bool ok = true;
  std::string error;        ///< status text when !ok
  uint64_t total_ns = 0;    ///< wall time, prepare + execute
  /// Wall-clock time of recording, microseconds since the Unix epoch.
  /// Assigned by the recorder when left 0 (callers may pre-stamp).
  uint64_t wall_time_us = 0;
  /// Monotonic (steady-clock) nanoseconds at recording. The windowed
  /// time-series plane anchors window assignment and exemplar lookup on
  /// this, so neither depends on wall-clock jumps. Assigned by the
  /// recorder when left 0; exported as `steady_ns` in JSON.
  uint64_t steady_ns = 0;

  std::string ToString() const;
};

/// Canonical plan fingerprint used for QueryRecord::plan_hash.
uint64_t FingerprintPlanText(const std::string& canonical_plan_text);

/// Bounded, thread-safe flight recorder: a ring buffer of the last
/// `capacity` QueryRecords. Writers (optimizer, gateway and navigator
/// sessions on any thread) append; readers (\history, the /queries
/// endpoint, tests) copy out a consistent snapshot. Records past
/// capacity overwrite the oldest — the recorder never grows and never
/// blocks recording on readers beyond the buffer mutex.
///
/// A configurable slow-query threshold reports offenders through the
/// leveled logger (UNIQOPT_LOG(kWarning)) the moment they are recorded.
class QueryRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit QueryRecorder(size_t capacity = kDefaultCapacity);
  QueryRecorder(const QueryRecorder&) = delete;
  QueryRecorder& operator=(const QueryRecorder&) = delete;

  /// The default process-wide recorder (what the facade layers feed).
  static QueryRecorder& Global();

  /// Appends a record and returns its assigned id (callers hand the id
  /// to the time-series plane as the window exemplar). Thread-safe.
  uint64_t Record(QueryRecord record);

  /// Oldest-first copy of the retained records.
  std::vector<QueryRecord> History() const;

  /// Retained records at or above the slow threshold, oldest first.
  std::vector<QueryRecord> SlowQueries() const;

  /// Total records seen since construction or the last Clear()
  /// (retained or evicted).
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

  /// Re-bounds the buffer, keeping the newest records. `capacity` >= 1.
  void SetCapacity(size_t capacity);

  /// Queries slower than this (total_ns) are logged on arrival and
  /// surface in SlowQueries(). 0 disables (the default).
  void SetSlowThresholdNs(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  void Clear();

  /// `\history` rendering: one block per record, oldest first.
  std::string ToText() const;
  /// {"queries": [{...}, ...]} — the /queries endpoint payload.
  std::string ToJson() const;

 private:
  std::vector<QueryRecord> SnapshotLocked() const;  // requires mu_

  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<QueryRecord> ring_;   // ring_[i], i < size; oldest at head_
  size_t head_ = 0;                 // index of the oldest record
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> slow_threshold_ns_{0};
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace obs
}  // namespace uniqopt

#endif  // UNIQOPT_OBS_RECORDER_H_
