#include "oodb/object_store.h"

#include "common/string_util.h"

namespace uniqopt {
namespace oodb {

Result<size_t> ClassDef::FieldIndex(const std::string& field_name) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (EqualsIgnoreCase(fields[i].name, field_name)) return i;
  }
  return Status::NotFound("no field " + field_name + " in class " + name);
}

std::string NavStats::ToString() const {
  return "derefs=" + std::to_string(pointer_derefs) +
         " retrieved=" + std::to_string(objects_retrieved) +
         " probes=" + std::to_string(index_probes) +
         " entries=" + std::to_string(index_entries) +
         " peeks=" + std::to_string(header_peeks);
}

Result<size_t> ObjectStore::AddClass(ClassDef def) {
  for (const ClassDef& c : classes_) {
    if (EqualsIgnoreCase(c.name, def.name)) {
      return Status::AlreadyExists("class exists: " + def.name);
    }
  }
  if (!def.parent_class.empty()) {
    UNIQOPT_RETURN_NOT_OK(ClassId(def.parent_class).status());
  }
  classes_.push_back(std::move(def));
  extents_.emplace_back();
  return classes_.size() - 1;
}

Result<size_t> ObjectStore::ClassId(const std::string& name) const {
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (EqualsIgnoreCase(classes_[i].name, name)) return i;
  }
  return Status::NotFound("class not found: " + name);
}

Result<Oid> ObjectStore::Insert(size_t class_id, Row fields, Oid parent) {
  const ClassDef& cls = classes_.at(class_id);
  if (fields.size() != cls.fields.size()) {
    return Status::InvalidArgument("field count mismatch for class " +
                                   cls.name);
  }
  if (cls.parent_class.empty() != (parent == kNullOid)) {
    return Status::InvalidArgument(
        "parent OID must be given exactly when the class declares a "
        "parent: " +
        cls.name);
  }
  if (parent != kNullOid) {
    UNIQOPT_ASSIGN_OR_RETURN(size_t parent_id, ClassId(cls.parent_class));
    if (parent >= objects_.size() ||
        objects_[parent].class_id != parent_id) {
      return Status::InvalidArgument("parent OID is not a " +
                                     cls.parent_class);
    }
  }
  Oid oid = objects_.size();
  StoredObject obj;
  obj.class_id = class_id;
  obj.fields = std::move(fields);
  obj.parent = parent;
  // Maintain any existing indexes.
  for (auto& [key, index] : indexes_) {
    if (key.first == class_id) {
      index.emplace(obj.fields[key.second], oid);
    }
  }
  objects_.push_back(std::move(obj));
  extents_[class_id].push_back(oid);
  return oid;
}

Status ObjectStore::CreateIndex(size_t class_id, const std::string& field) {
  UNIQOPT_ASSIGN_OR_RETURN(size_t field_idx,
                           classes_.at(class_id).FieldIndex(field));
  auto key = std::make_pair(class_id, field_idx);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index exists on " +
                                 classes_[class_id].name + "." + field);
  }
  IndexMap index;
  for (Oid oid : extents_[class_id]) {
    index.emplace(objects_[oid].fields[field_idx], oid);
  }
  indexes_.emplace(key, std::move(index));
  return Status::OK();
}

bool ObjectStore::HasIndex(size_t class_id, size_t field) const {
  return indexes_.count({class_id, field}) > 0;
}

Result<const ObjectStore::IndexMap*> ObjectStore::GetIndex(
    size_t class_id, size_t field) const {
  auto it = indexes_.find({class_id, field});
  if (it == indexes_.end()) {
    return Status::NotFound("no index on class " +
                            classes_.at(class_id).name + " field #" +
                            std::to_string(field));
  }
  return &it->second;
}

Result<std::vector<Oid>> NavigationSession::IndexEq(size_t class_id,
                                                    size_t field,
                                                    const Value& value) {
  UNIQOPT_ASSIGN_OR_RETURN(const ObjectStore::IndexMap* index,
                           store_->GetIndex(class_id, field));
  ++stats_.index_probes;
  probes_counter_->Increment();
  std::vector<Oid> out;
  auto [begin, end] = index->equal_range(value);
  for (auto it = begin; it != end; ++it) {
    ++stats_.index_entries;
    entries_counter_->Increment();
    out.push_back(it->second);
  }
  return out;
}

Result<std::vector<Oid>> NavigationSession::IndexRange(size_t class_id,
                                                       size_t field,
                                                       const Value& lo,
                                                       const Value& hi) {
  UNIQOPT_ASSIGN_OR_RETURN(const ObjectStore::IndexMap* index,
                           store_->GetIndex(class_id, field));
  ++stats_.index_probes;
  probes_counter_->Increment();
  std::vector<Oid> out;
  for (auto it = index->lower_bound(lo);
       it != index->end() && it->first.Compare(hi) <= 0; ++it) {
    ++stats_.index_entries;
    entries_counter_->Increment();
    out.push_back(it->second);
  }
  return out;
}

}  // namespace oodb
}  // namespace uniqopt
