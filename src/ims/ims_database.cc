#include "ims/ims_database.h"

#include "common/string_util.h"

namespace uniqopt {
namespace ims {

Result<size_t> SegmentTypeDef::FieldIndex(const std::string& field_name) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (EqualsIgnoreCase(fields[i].name, field_name)) return i;
  }
  return Status::NotFound("no field " + field_name + " in segment " + name);
}

Status ImsDatabaseDef::AddSegmentType(SegmentTypeDef def) {
  if (types_.empty()) {
    if (!def.parent.empty()) {
      return Status::InvalidArgument("first segment type must be the root");
    }
  } else {
    if (def.parent.empty()) {
      return Status::InvalidArgument("only one root segment type allowed");
    }
    UNIQOPT_RETURN_NOT_OK(GetType(def.parent).status());
  }
  if (def.key_field < 0 ||
      static_cast<size_t>(def.key_field) >= def.fields.size()) {
    return Status::InvalidArgument("segment type " + def.name +
                                   " must have a valid sequence field");
  }
  for (const SegmentTypeDef& t : types_) {
    if (EqualsIgnoreCase(t.name, def.name)) {
      return Status::AlreadyExists("segment type exists: " + def.name);
    }
  }
  types_.push_back(std::move(def));
  return Status::OK();
}

Result<const SegmentTypeDef*> ImsDatabaseDef::GetType(
    const std::string& name) const {
  for (const SegmentTypeDef& t : types_) {
    if (EqualsIgnoreCase(t.name, name)) return &t;
  }
  return Status::NotFound("segment type not found: " + name);
}

Result<size_t> ImsDatabaseDef::TypeOrdinal(const std::string& name) const {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (EqualsIgnoreCase(types_[i].name, name)) return i;
  }
  return Status::NotFound("segment type not found: " + name);
}

Result<Segment*> ImsDatabase::InsertRoot(Row fields) {
  const SegmentTypeDef& root_type = def_.root();
  if (fields.size() != root_type.fields.size()) {
    return Status::InvalidArgument("field count mismatch for root segment");
  }
  Value key = fields[root_type.key_field];
  if (roots_.count(key) > 0) {
    return Status::ConstraintViolation("duplicate root key " +
                                       key.ToString());
  }
  auto seg = std::make_unique<Segment>();
  seg->type = &root_type;
  seg->fields = std::move(fields);
  seg->first_child.resize(def_.types().size(), nullptr);
  Segment* raw = seg.get();
  segments_.push_back(std::move(seg));
  roots_.emplace(std::move(key), raw);
  return raw;
}

Result<Segment*> ImsDatabase::InsertChild(Segment* parent,
                                          const std::string& type_name,
                                          Row fields) {
  UNIQOPT_ASSIGN_OR_RETURN(const SegmentTypeDef* type, def_.GetType(type_name));
  UNIQOPT_ASSIGN_OR_RETURN(size_t ordinal, def_.TypeOrdinal(type_name));
  if (!EqualsIgnoreCase(type->parent, parent->type->name)) {
    return Status::InvalidArgument("segment " + type_name +
                                   " is not a child of " +
                                   parent->type->name);
  }
  if (fields.size() != type->fields.size()) {
    return Status::InvalidArgument("field count mismatch for " + type_name);
  }
  auto seg = std::make_unique<Segment>();
  seg->type = type;
  seg->fields = std::move(fields);
  seg->parent = parent;
  seg->first_child.resize(def_.types().size(), nullptr);
  Segment* raw = seg.get();
  segments_.push_back(std::move(seg));

  // Insert into the twin chain in ascending key order.
  const Value& key = raw->KeyValue();
  Segment** link = &parent->first_child[ordinal];
  while (*link != nullptr && (*link)->KeyValue().Compare(key) < 0) {
    link = &(*link)->next_twin;
  }
  raw->next_twin = *link;
  *link = raw;
  return raw;
}

Segment* ImsDatabase::FindRoot(const Value& key) const {
  auto it = roots_.find(key);
  return it == roots_.end() ? nullptr : it->second;
}

Segment* ImsDatabase::FirstRoot() const {
  return roots_.empty() ? nullptr : roots_.begin()->second;
}

Segment* ImsDatabase::NextRoot(const Segment* root) const {
  auto it = roots_.upper_bound(root->KeyValue());
  return it == roots_.end() ? nullptr : it->second;
}

}  // namespace ims
}  // namespace uniqopt
