# Empty dependencies file for uniqopt_oodb.
# This may be replaced when dependencies are built.
