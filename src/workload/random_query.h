#ifndef UNIQOPT_WORKLOAD_RANDOM_QUERY_H_
#define UNIQOPT_WORKLOAD_RANDOM_QUERY_H_

#include <cstdint>
#include <random>
#include <string>

namespace uniqopt {

struct RandomQueryOptions {
  uint64_t seed = 1;
  /// Maximum FROM tables (1 or 2).
  size_t max_tables = 2;
  size_t max_predicates = 3;
  /// Probability of adding the natural SNO join predicate when two
  /// tables are chosen.
  double join_probability = 0.8;
  /// Probability that a generated predicate conjunct is an EXISTS
  /// subquery.
  double exists_probability = 0.15;
  /// Generate SELECT DISTINCT (property tests for the analyzer) or a mix.
  bool always_distinct = true;
  /// Probability of producing a GROUP BY query (the projection becomes
  /// the grouping list, plus aggregates).
  double group_by_probability = 0.0;
};

/// Generates random SQL queries over the Figure 1 supplier schema. The
/// generated queries stay within the supported subset (SPJ + EXISTS),
/// reference only palette values the data generator actually produces,
/// and are always parseable and bindable.
class RandomQueryGenerator {
 public:
  explicit RandomQueryGenerator(const RandomQueryOptions& options = {})
      : options_(options), rng_(options.seed) {}

  /// Next random query specification.
  std::string NextQuery();

  /// Schema metadata used to generate well-typed references.
  struct TableInfo;

 private:
  const TableInfo& PickTable();
  std::string RandomPredicate(const std::string& alias,
                              const TableInfo& table);

  RandomQueryOptions options_;
  std::mt19937_64 rng_;
};

}  // namespace uniqopt

#endif  // UNIQOPT_WORKLOAD_RANDOM_QUERY_H_
