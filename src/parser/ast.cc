#include "parser/ast.h"

namespace uniqopt {

const char* SetOpKindToString(SetOpKind k) {
  switch (k) {
    case SetOpKind::kIntersect:
      return "INTERSECT";
    case SetOpKind::kIntersectAll:
      return "INTERSECT ALL";
    case SetOpKind::kExcept:
      return "EXCEPT";
    case SetOpKind::kExceptAll:
      return "EXCEPT ALL";
  }
  return "?";
}

std::string AstExpr::ToString() const {
  switch (kind) {
    case AstExprKind::kLiteral:
      return literal.ToString();
    case AstExprKind::kColumnRef:
      return qualifier.empty() ? name : qualifier + "." + name;
    case AstExprKind::kHostVar:
      return ":" + name;
    case AstExprKind::kCompare:
      return children[0]->ToString() + " " + CompareOpToString(op) + " " +
             children[1]->ToString();
    case AstExprKind::kAnd:
    case AstExprKind::kOr: {
      const char* sep = kind == AstExprKind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case AstExprKind::kNot:
      return "NOT (" + children[0]->ToString() + ")";
    case AstExprKind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case AstExprKind::kBetween:
      return children[0]->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case AstExprKind::kInList: {
      std::string out =
          children[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case AstExprKind::kExists:
      return std::string(negated ? "NOT EXISTS (" : "EXISTS (") +
             subquery->ToString() + ")";
    case AstExprKind::kInSubquery:
      return children[0]->ToString() + (negated ? " NOT IN (" : " IN (") +
             subquery->ToString() + ")";
    case AstExprKind::kAggregate: {
      switch (agg_func) {
        case AstAggFunc::kCountStar:
          return "COUNT(*)";
        case AstAggFunc::kCount:
          return "COUNT(" + children[0]->ToString() + ")";
        case AstAggFunc::kSum:
          return "SUM(" + children[0]->ToString() + ")";
        case AstAggFunc::kMin:
          return "MIN(" + children[0]->ToString() + ")";
        case AstAggFunc::kMax:
          return "MAX(" + children[0]->ToString() + ")";
        case AstAggFunc::kAvg:
          return "AVG(" + children[0]->ToString() + ")";
      }
      return "?";
    }
  }
  return "?";
}

std::string QuerySpec::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = select_list[i];
    if (item.star) {
      out += item.star_qualifier.empty() ? "*" : item.star_qualifier + ".*";
    } else {
      out += item.expr->ToString();
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].table_name;
    if (!from[i].alias.empty() && from[i].alias != from[i].table_name) {
      out += " " + from[i].alias;
    }
  }
  if (where != nullptr) {
    out += " WHERE " + where->ToString();
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  return out;
}

std::string Query::ToString() const {
  std::string out = specs[0]->ToString();
  for (size_t i = 0; i < ops.size(); ++i) {
    out += std::string(" ") + SetOpKindToString(ops[i]) + " " +
           specs[i + 1]->ToString();
  }
  return out;
}

}  // namespace uniqopt
