// Tests for the observability layer: metrics registry (counters,
// histograms, snapshots/deltas), tracing (span nesting, attributes,
// disabled no-op), and the EXPLAIN ANALYZE surfaces built on them —
// including the Example 10 gateway claim that the join→subquery rewrite
// halves ims.dli.gnp_calls.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "ims/translator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/rewriter.h"
#include "test_util.h"
#include "uniqopt/optimizer.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter& c = registry.GetCounter("test.shared");
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("test.shared").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, ConcurrentLookupAndIncrementStress) {
  // Threads race on registry lookups (mutex) while spreading increments
  // over 16 counters; every increment must land.
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("stress." + std::to_string(i % 16)).Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  uint64_t total = 0;
  for (const auto& [name, value] : registry.Counters()) total += value;
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, SnapshotDeltaReportsOnlyMovedCounters) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a").Increment(5);
  registry.GetCounter("b").Increment(1);
  obs::CounterSnapshot before = registry.Counters();
  registry.GetCounter("b").Increment(41);
  registry.GetCounter("c").Increment(7);
  obs::CounterSnapshot after = registry.Counters();
  obs::CounterSnapshot delta = obs::CounterDelta(before, after);
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta.at("b"), 41u);
  EXPECT_EQ(delta.at("c"), 7u);
  std::string text = obs::CounterDeltaToText(before, after);
  EXPECT_NE(text.find("b: +41"), std::string::npos) << text;
  EXPECT_NE(text.find("c: +7"), std::string::npos) << text;
  EXPECT_EQ(text.find("a:"), std::string::npos) << text;
}

TEST(RegistryTest, ResetAllZeroesButKeepsNames) {
  obs::MetricsRegistry registry;
  registry.GetCounter("x").Increment(3);
  registry.GetHistogram("h").Record(42);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("x").value(), 0u);
  EXPECT_EQ(registry.GetHistogram("h").count(), 0u);
  EXPECT_EQ(registry.Counters().count("x"), 1u);
}

TEST(RegistryTest, JsonDumpIsWellFormedEnough) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c.one").Increment(2);
  registry.GetHistogram("h.lat").Record(100);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"c.one\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.lat\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
}

TEST(HistogramTest, ExactStatsAndSmallValues) {
  obs::Histogram h;
  for (uint64_t v = 0; v < 8; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 28u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7u);
  // Values below 2^kPrecisionBits land in unit-width buckets: exact.
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 7u);
}

TEST(HistogramTest, BucketRoundTripWithinErrorBound) {
  for (uint64_t v : {1ull, 7ull, 8ull, 100ull, 999ull, 12345ull,
                     (1ull << 20) + 3, 0xDEADBEEFull, 1ull << 50}) {
    uint64_t mid = obs::Histogram::BucketMidpoint(
        obs::Histogram::BucketIndex(v));
    double rel = v == 0 ? 0.0
                        : std::abs(static_cast<double>(mid) -
                                   static_cast<double>(v)) /
                              static_cast<double>(v);
    EXPECT_LE(rel, 0.125) << "value " << v << " midpoint " << mid;
  }
}

TEST(HistogramTest, QuantilesWithinRelativeErrorBound) {
  obs::Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  struct Case {
    double q;
    double expected;
  };
  for (const auto& [q, expected] : {Case{0.5, 500.0}, Case{0.9, 900.0},
                                    Case{0.99, 990.0}}) {
    double got = static_cast<double>(h.Quantile(q));
    EXPECT_LE(std::abs(got - expected), expected * 0.125 + 1)
        << "q=" << q << " got " << got;
  }
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), static_cast<uint64_t>(kThreads * kPerThread - 1));
}

TEST(HistogramTest, EmptyHistogramEdgeCases) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 0u) << "q=" << q;
  }
  EXPECT_TRUE(h.CumulativeBuckets().empty());
}

TEST(HistogramTest, SingleSampleQuantiles) {
  obs::Histogram h;
  h.Record(42);
  // With one observation every quantile is that observation (values
  // below 2^kPrecisionBits octaves are bucket-exact).
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 42u) << "q=" << q;
  }
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  ASSERT_EQ(h.CumulativeBuckets().size(), 1u);
  EXPECT_GE(h.CumulativeBuckets()[0].first, 42u);
  EXPECT_EQ(h.CumulativeBuckets()[0].second, 1u);
}

TEST(HistogramTest, ResetRestoresEmptyState) {
  obs::Histogram h;
  h.Record(7);
  h.Record(1000000);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_TRUE(h.CumulativeBuckets().empty());
  // And the histogram is fully usable again.
  h.Record(9);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 9u);
}

TEST(HistogramTest, ResetBumpsGenerationRecordDoesNot) {
  // The time-series plane snapshot-diffs histograms between ticks; the
  // generation counter is how it detects a Reset() straddling a window
  // (the delta would be garbage, so the window is marked invalid).
  obs::Histogram h;
  uint64_t gen0 = h.generation();
  EXPECT_EQ(gen0 % 2, 0u) << "generation must be even at rest";
  h.Record(7);
  h.Record(1000);
  EXPECT_EQ(h.generation(), gen0) << "Record must not bump generation";
  h.Reset();
  uint64_t gen1 = h.generation();
  EXPECT_GT(gen1, gen0);
  EXPECT_EQ(gen1 % 2, 0u) << "Reset must leave generation even";
  // Every Reset advances it again — two resets are distinguishable.
  h.Reset();
  EXPECT_GT(h.generation(), gen1);
}

TEST(HistogramTest, BucketUpperBoundsAreInclusiveAndOrdered) {
  // A value must never exceed its bucket's upper bound, and bounds must
  // strictly increase (they become Prometheus `le` boundaries).
  for (uint64_t v : {0ull, 1ull, 7ull, 8ull, 100ull, 12345ull,
                     (1ull << 30) + 17}) {
    size_t idx = obs::Histogram::BucketIndex(v);
    EXPECT_LE(v, obs::Histogram::BucketUpperBound(idx)) << "value " << v;
    if (idx > 0) {
      EXPECT_LT(obs::Histogram::BucketUpperBound(idx - 1),
                obs::Histogram::BucketUpperBound(idx));
    }
  }
}

TEST(RegistryTest, ResetAllIsolatesTests) {
  // The pattern tests use for isolation: move metrics, ResetAll, and
  // subsequent readings start from zero without re-registration races.
  obs::MetricsRegistry registry;
  registry.GetCounter("iso.count").Increment(5);
  registry.GetHistogram("iso.ns").Record(100);
  registry.ResetAll();
  registry.GetCounter("iso.count").Increment(1);
  EXPECT_EQ(registry.GetCounter("iso.count").value(), 1u);
  EXPECT_EQ(registry.GetHistogram("iso.ns").count(), 0u);
}

TEST(MetricNameTest, ValidatesDottedScheme) {
  EXPECT_TRUE(obs::IsValidMetricName("ims.dli.gnp_calls"));
  EXPECT_TRUE(obs::IsValidMetricName("rewrite.rule.SubqueryToJoin.fired"));
  EXPECT_TRUE(obs::IsValidMetricName("_private"));
  EXPECT_TRUE(obs::IsValidMetricName("a:b"));
  EXPECT_FALSE(obs::IsValidMetricName(""));
  EXPECT_FALSE(obs::IsValidMetricName("9starts.with.digit"));
  EXPECT_FALSE(obs::IsValidMetricName("has space"));
  EXPECT_FALSE(obs::IsValidMetricName("has-dash"));
  EXPECT_FALSE(obs::IsValidMetricName("tab\tchar"));
}

TEST(MetricNameTest, CanonicalizationMapsIllegalCharsToUnderscore) {
  EXPECT_EQ(obs::CanonicalMetricName("ims.dli.gn_calls"),
            "ims.dli.gn_calls");
  EXPECT_EQ(obs::CanonicalMetricName("has space"), "has_space");
  EXPECT_EQ(obs::CanonicalMetricName("has-dash"), "has_dash");
  EXPECT_EQ(obs::CanonicalMetricName("9lead"), "_lead");
  EXPECT_EQ(obs::CanonicalMetricName(""), "_");
}

TEST(MetricNameTest, RegistrationCanonicalizesInvalidNames) {
  obs::MetricsRegistry registry;
  registry.GetCounter("bad name-here").Increment(2);
  // The metric is stored (and exported) under the canonical name; the
  // invalid spelling resolves to the same counter.
  EXPECT_EQ(registry.Counters().count("bad_name_here"), 1u);
  EXPECT_EQ(registry.Counters().count("bad name-here"), 0u);
  registry.GetCounter("bad_name_here").Increment(1);
  EXPECT_EQ(registry.GetCounter("bad name-here").value(), 3u);
}

TEST(TraceTest, SpanNestingAndAttributes) {
  obs::CollectingSink sink;
  obs::Tracer::Global().Enable(&sink);
  {
    obs::Span outer("outer");
    outer.AddAttr("phase", std::string("test"));
    {
      obs::Span inner("inner");
      inner.AddAttr("rows", uint64_t{7});
      inner.AddAttr("ok", true);
    }
  }
  obs::Tracer::Global().Disable();
  std::vector<obs::TraceEvent> events = sink.TakeEvents();
  ASSERT_EQ(events.size(), 2u);
  // Spans are emitted as they end: inner first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[0].parent_id, events[1].id);
  EXPECT_EQ(events[1].parent_id, 0u);
  ASSERT_EQ(events[0].attrs.size(), 2u);
  EXPECT_EQ(events[0].attrs[0].first, "rows");
  EXPECT_EQ(events[0].attrs[0].second, "7");
  EXPECT_EQ(events[0].attrs[1].second, "true");
  ASSERT_EQ(events[1].attrs.size(), 1u);
  EXPECT_EQ(events[1].attrs[0].second, "test");
}

TEST(TraceTest, DisabledTracingIsInert) {
  obs::CollectingSink sink;
  ASSERT_FALSE(obs::Tracer::Global().enabled());
  {
    obs::Span span("never.seen");
    EXPECT_FALSE(span.active());
    span.AddAttr("k", 1);  // must be a no-op, not a crash
  }
  EXPECT_TRUE(sink.TakeEvents().empty());
}

TEST(TraceTest, SiblingSpansShareParent) {
  obs::CollectingSink sink;
  obs::Tracer::Global().Enable(&sink);
  {
    obs::Span parent("parent");
    { obs::Span a("a"); }
    { obs::Span b("b"); }
  }
  obs::Tracer::Global().Disable();
  std::vector<obs::TraceEvent> events = sink.TakeEvents();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].name, "parent");
  EXPECT_EQ(events[0].parent_id, events[2].id);
  EXPECT_EQ(events[1].parent_id, events[2].id);
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 1);
}

TEST(ExplainAnalyzeTest, ReportsProfileStatsAndMetricsDelta) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery prepared,
      optimizer.Prepare("SELECT DISTINCT S.SNAME FROM SUPPLIER S, PARTS P "
                        "WHERE S.SNO = P.SNO"));
  ASSERT_OK_AND_ASSIGN(std::string report,
                       optimizer.ExplainAnalyze(prepared));
  EXPECT_NE(report.find("-- execution profile --"), std::string::npos)
      << report;
  EXPECT_NE(report.find("rows_in="), std::string::npos) << report;
  EXPECT_NE(report.find("-- executor stats --"), std::string::npos);
  EXPECT_NE(report.find("-- metrics delta --"), std::string::npos);
  EXPECT_NE(report.find("exec.rows_scanned: +"), std::string::npos)
      << report;
  EXPECT_NE(report.find("-- uniqueness analysis --"), std::string::npos);
  EXPECT_NE(report.find("row(s) in"), std::string::npos);
}

/// The Example 10 acceptance claim: EXPLAIN ANALYZE over the gateway
/// shows ims.dli.gnp_calls from the metrics registry, and the
/// join→subquery rewrite halves it versus the un-rewritten program.
class GatewayExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(MakeTestSupplierDatabase(&db_));
    ASSERT_OK_AND_ASSIGN(ims_, ims::BuildSupplierIms(db_));
  }

  /// Binds Example 10's SQL, optionally applies the join→subquery
  /// rewrite, translates, and runs via ExplainAnalyzeProgram.
  void RunExample10(bool rewrite_first, std::string* report,
                    ims::GatewayResult* result) {
    Binder binder(&db_.catalog());
    auto bound = binder.BindSql(
        "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
        "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO");
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    PlanPtr plan = bound->plan;
    if (rewrite_first) {
      RewriteOptions opts;
      opts.join_to_subquery = true;  // navigational policy
      opts.subquery_to_join = false;
      opts.subquery_to_distinct_join = false;
      opts.join_elimination = false;
      ASSERT_OK_AND_ASSIGN(RewriteResult r, RewritePlan(plan, opts));
      ASSERT_FALSE(r.applied.empty());
      plan = r.plan;
    }
    ASSERT_OK_AND_ASSIGN(ims::DliProgram program,
                         TranslatePlan(*ims_, plan));
    std::vector<Value> params(bound->host_vars.size());
    ASSERT_OK_AND_ASSIGN(size_t slot, bound->HostVarSlot("PARTNO"));
    params[slot] = Value::Integer(4);
    *report = ims::ExplainAnalyzeProgram(*ims_, program, params, result);
  }

  Database db_;
  std::unique_ptr<ims::ImsDatabase> ims_;
};

TEST_F(GatewayExplainAnalyzeTest, JoinToSubqueryHalvesGnpCalls) {
  std::string join_report;
  ims::GatewayResult join_result;
  RunExample10(/*rewrite_first=*/false, &join_report, &join_result);

  std::string nested_report;
  ims::GatewayResult nested_result;
  RunExample10(/*rewrite_first=*/true, &nested_report, &nested_result);

  // Both reports surface the registry counter the paper's §6.1 claim is
  // about, with the per-run delta.
  EXPECT_NE(join_report.find("ims.dli.gnp_calls: +"), std::string::npos)
      << join_report;
  EXPECT_NE(nested_report.find("ims.dli.gnp_calls: +"), std::string::npos)
      << nested_report;

  // Same answer either way...
  EXPECT_TRUE(MultisetEquals(join_result.rows, nested_result.rows));
  // ...but the nested (EXISTS) program issues exactly half the GNP
  // calls: one per supplier instead of the join program's
  // match-then-fail pair.
  EXPECT_EQ(join_result.stats.gnp_calls, 2 * nested_result.stats.gnp_calls)
      << "join: " << join_result.stats.ToString()
      << "\nnested: " << nested_result.stats.ToString();
  EXPECT_NE(join_report.find("ims.dli.gnp_calls: +" +
                             std::to_string(join_result.stats.gnp_calls)),
            std::string::npos)
      << join_report;
}

TEST_F(GatewayExplainAnalyzeTest, ReportSectionsPresent) {
  std::string report;
  ims::GatewayResult result;
  RunExample10(/*rewrite_first=*/false, &report, &result);
  EXPECT_NE(report.find("-- dl/i program --"), std::string::npos) << report;
  EXPECT_NE(report.find("-- dl/i stats --"), std::string::npos);
  EXPECT_NE(report.find("-- metrics delta --"), std::string::npos);
  EXPECT_NE(report.find("-- result --"), std::string::npos);
  EXPECT_NE(report.find("ims.dli.segments_visited: +"), std::string::npos)
      << report;
}

}  // namespace
}  // namespace uniqopt
