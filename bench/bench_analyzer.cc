// Experiment X3/X10 (§4, §5.1): cost and coverage of the uniqueness
// analyzers.
//
//  - BM_Algorithm1 / BM_FdPropagation: per-query analysis latency over
//    the paper-example corpus — the paper's point is that the sufficient
//    test is cheap (polynomial) versus the NP-complete exact condition;
//    both detectors should stay in the microsecond range.
//  - BM_CorpusApplicability: detection rates on the corpus (counters
//    `alg1_yes`, `fd_yes`, `ground_truth`), reproducing the claim that
//    Algorithm 1 "handles a large subclass of queries".
//  - BM_GeneratedApplicability: detection rate over a CASE-tool-style
//    generated workload (X10).

#include <benchmark/benchmark.h>

#include "analysis/uniqueness.h"
#include "bench_util.h"
#include "workload/query_corpus.h"
#include "workload/random_query.h"

namespace uniqopt {
namespace bench {
namespace {

std::vector<PlanPtr> BindCorpus(const Database& db) {
  std::vector<PlanPtr> plans;
  for (const CorpusQuery& q : DistinctQueryCorpus()) {
    plans.push_back(MustBind(db, q.sql));
  }
  return plans;
}

void BM_Algorithm1(benchmark::State& state) {
  const Database& db = GetSupplierDb(100, 10);
  std::vector<PlanPtr> plans = BindCorpus(db);
  Algorithm1Options opts;
  opts.verbatim_line10 = true;
  size_t yes = 0;
  for (auto _ : state) {
    yes = 0;
    for (const PlanPtr& plan : plans) {
      auto verdict = AnalyzeDistinctAlgorithm1(plan, opts);
      if (verdict.ok() && verdict->distinct_unnecessary) ++yes;
    }
    benchmark::DoNotOptimize(yes);
  }
  state.counters["queries"] = static_cast<double>(plans.size());
  state.counters["yes"] = static_cast<double>(yes);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plans.size()));
}
BENCHMARK(BM_Algorithm1);

void BM_FdPropagation(benchmark::State& state) {
  const Database& db = GetSupplierDb(100, 10);
  std::vector<PlanPtr> plans = BindCorpus(db);
  size_t yes = 0;
  for (auto _ : state) {
    yes = 0;
    for (const PlanPtr& plan : plans) {
      if (AnalyzeDistinctFd(plan).distinct_unnecessary) ++yes;
    }
    benchmark::DoNotOptimize(yes);
  }
  state.counters["queries"] = static_cast<double>(plans.size());
  state.counters["yes"] = static_cast<double>(yes);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plans.size()));
}
BENCHMARK(BM_FdPropagation);

void BM_CorpusApplicability(benchmark::State& state) {
  const Database& db = GetSupplierDb(100, 10);
  const auto& corpus = DistinctQueryCorpus();
  std::vector<PlanPtr> plans = BindCorpus(db);
  size_t alg1_yes = 0;
  size_t fd_yes = 0;
  size_t truth = 0;
  for (auto _ : state) {
    alg1_yes = fd_yes = truth = 0;
    Algorithm1Options verbatim;
    verbatim.verbatim_line10 = true;
    for (size_t i = 0; i < plans.size(); ++i) {
      if (corpus[i].distinct_redundant) ++truth;
      auto a1 = AnalyzeDistinctAlgorithm1(plans[i], verbatim);
      if (a1.ok() && a1->distinct_unnecessary) ++alg1_yes;
      if (AnalyzeDistinctFd(plans[i]).distinct_unnecessary) ++fd_yes;
    }
  }
  state.counters["ground_truth"] = static_cast<double>(truth);
  state.counters["alg1_yes"] = static_cast<double>(alg1_yes);
  state.counters["fd_yes"] = static_cast<double>(fd_yes);
}
BENCHMARK(BM_CorpusApplicability);

void BM_GeneratedApplicability(benchmark::State& state) {
  const Database& db = GetSupplierDb(100, 10);
  RandomQueryGenerator gen(
      RandomQueryOptions{.seed = static_cast<uint64_t>(state.range(0))});
  Binder binder(&db.catalog());
  std::vector<PlanPtr> plans;
  for (int i = 0; i < 200; ++i) {
    auto bound = binder.BindSql(gen.NextQuery());
    if (bound.ok()) plans.push_back(bound->plan);
  }
  size_t fd_yes = 0;
  for (auto _ : state) {
    fd_yes = 0;
    for (const PlanPtr& plan : plans) {
      if (AnalyzeDistinctFd(plan).distinct_unnecessary) ++fd_yes;
    }
  }
  state.counters["queries"] = static_cast<double>(plans.size());
  state.counters["fd_yes"] = static_cast<double>(fd_yes);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plans.size()));
}
BENCHMARK(BM_GeneratedApplicability)->Arg(1)->Arg(2);

}  // namespace
}  // namespace bench
}  // namespace uniqopt

UNIQOPT_BENCH_MAIN();
