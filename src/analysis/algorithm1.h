#ifndef UNIQOPT_ANALYSIS_ALGORITHM1_H_
#define UNIQOPT_ANALYSIS_ALGORITHM1_H_

#include <string>
#include <vector>

#include "analysis/proof.h"
#include "analysis/properties.h"
#include "analysis/shape.h"
#include "common/result.h"
#include "fd/attribute_set.h"
#include "obs/advisor.h"

namespace uniqopt {

/// Options for the paper's Algorithm 1 (§4) on top of the shared
/// analysis switches.
struct Algorithm1Options : AnalysisOptions {
  /// Reproduce the published algorithm exactly, including line 10's
  /// `if C = T then return NO`. When false (default), a predicate that
  /// reduces to TRUE proceeds with V = A, so purely-projective queries
  /// such as `SELECT DISTINCT * FROM R` are recognized (a sound
  /// strengthening the paper's theorem clearly admits).
  bool verbatim_line10 = false;
  /// Record a structured ProofTrace (normalization decisions, closure
  /// steps, per-key outcomes) alongside the flat text trace. Costs a few
  /// string builds per conjunct; off only for the tightest benchmarks.
  bool record_proof = true;
  /// Goal label attached to near-miss records emitted at this run's
  /// failure sites (callers testing a different theorem override it).
  std::string near_miss_goal = "theorem1.distinct";
};

/// Outcome of Algorithm 1, with the step-by-step trace the paper walks
/// through in Example 5.
struct Algorithm1Result {
  bool yes = false;  ///< YES: duplicate elimination is unnecessary.
  /// Human-readable trace (one line per algorithm step).
  std::vector<std::string> trace;
  /// The final bound-column set V of the (single) conjunctive component.
  AttributeSet bound_columns;
  /// Structured proof (populated when options.record_proof).
  ProofTrace proof;
  /// On NO: the minimal missing fact for the first failing table
  /// (populated when options.collect_near_misses).
  std::vector<obs::NearMiss> near_misses;

  std::string TraceToString() const;
};

/// The bound-column closure at the heart of Algorithm 1 and of the
/// Theorem 2 test: starting from `initially_bound`, add every column
/// equated to a constant or host variable (Type 1), then close
/// transitively over column=column equalities (Type 2). Conjuncts that
/// are not atomic Type 1/2 equalities are deleted first (lines 6–9),
/// which only weakens the tested condition — sound.
///
/// `conjuncts` are the top-level conjuncts of the predicate (each may
/// still be a disjunction, which gets deleted). Returns the closed set V
/// and appends trace lines. When `proof` is non-null its conjuncts /
/// initially_bound / closure_steps / closure fields are filled in
/// (`proof->column_names` should already hold the frame's display names).
AttributeSet BoundColumnClosure(const std::vector<ExprPtr>& conjuncts,
                                const AttributeSet& initially_bound,
                                const AnalysisOptions& options,
                                std::vector<std::string>* trace,
                                bool* any_equality_kept,
                                ProofTrace* proof = nullptr);

/// Runs Algorithm 1 on a decomposed query specification: returns YES iff
/// for every FROM table some candidate key is contained in the closure
/// of the projection attributes. Implements lines 1–20 of the paper,
/// generalized to n tables (the paper's stated extension).
Result<Algorithm1Result> RunAlgorithm1(const SpecShape& shape,
                                       const Algorithm1Options& options = {});

}  // namespace uniqopt

#endif  // UNIQOPT_ANALYSIS_ALGORITHM1_H_
