#include "uniqopt/optimizer.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "cache/fingerprint.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "parser/parser.h"

namespace uniqopt {

namespace {

/// Interned identity of one optimizer phase: the span name and the
/// `optimizer.phase.<name>.ns` histogram handle, both resolved exactly
/// once per phase (function-local static at each Phase site) so the
/// per-call cost is the histogram's atomics — no string concatenation
/// and no registry mutex on the prepare hot path.
struct PhaseDef {
  const char* name;
  std::string span_name;
  obs::Histogram* histogram;
};

PhaseDef MakePhaseDef(const char* name) {
  PhaseDef def;
  def.name = name;
  def.span_name = std::string("optimizer.phase.") + name;
  def.histogram = &obs::MetricsRegistry::Global().GetHistogram(
      def.span_name + ".ns");
  return def;
}

/// One optimizer phase: a trace span plus a latency histogram sample.
/// The histogram records unconditionally (atomics only); the span is
/// zero-cost when tracing is off. With `phase_sink` non-null the
/// elapsed time is also appended there — that is how PreparedQuery
/// carries its per-phase latencies to the flight recorder.
class Phase {
 public:
  explicit Phase(const PhaseDef& def,
                 std::vector<std::pair<std::string, uint64_t>>* phase_sink =
                     nullptr)
      : def_(def),
        phase_sink_(phase_sink),
        span_(def.span_name.c_str()),
        start_(std::chrono::steady_clock::now()) {}

  ~Phase() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    def_.histogram->Record(ns);
    if (phase_sink_ != nullptr) phase_sink_->emplace_back(def_.name, ns);
  }

  obs::Span& span() { return span_; }

 private:
  const PhaseDef& def_;
  std::vector<std::pair<std::string, uint64_t>>* phase_sink_;
  obs::Span span_;
  std::chrono::steady_clock::time_point start_;
};

/// One-line verdict of the uniqueness analysis for the recorder.
std::string AnalysisSummary(const UniquenessVerdict& v) {
  if (!v.has_distinct) return "no DISTINCT at plan top";
  std::string detector = v.detector == DetectorKind::kAlgorithm1
                             ? "algorithm1"
                             : "fd-propagation";
  if (v.distinct_unnecessary) {
    return "DISTINCT proven redundant (" + detector + ")";
  }
  return "DISTINCT retained (unproven by " + detector + ")";
}

/// Emits the record for a failed prepare/execute so \history shows
/// erroring queries alongside successful ones.
void RecordFailure(const std::string& sql, const Status& status,
                   std::vector<std::pair<std::string, uint64_t>> phases) {
  obs::QueryRecord rec;
  rec.source = "optimizer";
  rec.query = sql;
  rec.ok = false;
  rec.error = status.ToString();
  rec.phase_ns = std::move(phases);
  for (const auto& [name, ns] : rec.phase_ns) rec.total_ns += ns;
  obs::QueryRecorder::Global().Record(std::move(rec));
}

}  // namespace

std::string PreparedQuery::Explain() const {
  std::string out = "SQL: " + sql;
  if (cache_hit) out += "  [plan cache hit]";
  out += "\n";
  out += "-- logical plan --\n";
  out += original_plan->ToString();
  if (rewrites.empty()) {
    out += "-- no rewrites applied --\n";
  } else {
    out += "-- rewrites --\n";
    for (const AppliedRewrite& r : rewrites) {
      out += "  ";
      out += RewriteRuleIdToString(r.rule);
      out += ": ";
      out += r.description;
      out += "\n";
    }
    out += "-- optimized plan --\n";
    out += optimized_plan->ToString();
  }
  if (cost_based) {
    out += "-- cost-based choice --\n";
    out += "  " + chosen_label +
           " (est. rows=" + std::to_string(chosen_estimate.rows) +
           ", cost=" + std::to_string(chosen_estimate.cost) + ")\n";
  }
  out += "-- uniqueness analysis --\n";
  out += analysis.ExplainProof();
  if (verified) {
    out += "-- verification --\n";
    out += verification.ToString();
  }
  return out;
}

Result<PreparedQuery> Optimizer::PrepareUncached(
    const std::string& sql) const {
  obs::Span prepare_span("optimizer.prepare");
  static obs::Counter& prepared_counter =
      obs::MetricsRegistry::Global().GetCounter("optimizer.queries_prepared");
  prepared_counter.Increment();

  PreparedQuery out;
  QueryPtr parsed;
  {
    static const PhaseDef kParse = MakePhaseDef("parse");
    Phase phase(kParse, &out.phase_ns);
    auto r = ParseQuery(sql);
    if (!r.ok()) {
      RecordFailure(sql, r.status(), std::move(out.phase_ns));
      return r.status();
    }
    parsed = std::move(*r);
  }
  BoundQuery bound;
  {
    static const PhaseDef kBind = MakePhaseDef("bind");
    Phase phase(kBind, &out.phase_ns);
    Binder binder(&db_->catalog());
    auto r = binder.Bind(*parsed);
    if (!r.ok()) {
      RecordFailure(sql, r.status(), std::move(out.phase_ns));
      return r.status();
    }
    bound = std::move(*r);
    phase.span().AddAttr(
        "host_vars", static_cast<uint64_t>(bound.host_vars.size()));
  }
  // Near-miss collection is an advisor feature: only pay for the
  // minimal-missing-fact computation at proof-failure sites when the
  // suggestions actually have somewhere to go.
  RewriteOptions effective_options = rewrite_options_;
  if (advise_ && obs::AdvisorStore::Global().enabled()) {
    effective_options.analysis.collect_near_misses = true;
  }
  {
    // Standalone DISTINCT analysis of the bound plan: the verdict (and
    // its proof) ride along on the PreparedQuery for EXPLAIN, whatever
    // the rewriter later decides to do with it.
    static const PhaseDef kAnalyze = MakePhaseDef("analyze");
    Phase phase(kAnalyze, &out.phase_ns);
    out.analysis = AnalyzeDistinct(bound.plan, effective_options.analysis);
    phase.span().AddAttr("has_distinct", out.analysis.has_distinct);
    phase.span().AddAttr("distinct_unnecessary",
                         out.analysis.distinct_unnecessary);
  }
  RewriteResult rewritten;
  {
    static const PhaseDef kRewrite = MakePhaseDef("rewrite");
    Phase phase(kRewrite, &out.phase_ns);
    auto r = RewritePlan(bound.plan, effective_options);
    if (!r.ok()) {
      RecordFailure(sql, r.status(), std::move(out.phase_ns));
      return r.status();
    }
    rewritten = std::move(*r);
    phase.span().AddAttr(
        "rewrites_applied", static_cast<uint64_t>(rewritten.applied.size()));
  }
  out.sql = sql;
  out.original_plan = std::move(bound.plan);
  out.optimized_plan = std::move(rewritten.plan);
  out.rewrites = std::move(rewritten.applied);
  out.host_vars = std::move(bound.host_vars);
  // Merge the standalone analysis' near-misses with the rewriter's
  // harvested ones, dedup by (goal, table, fact), and feed the advisor.
  {
    auto add = [&](std::vector<obs::NearMiss>* src) {
      for (obs::NearMiss& miss : *src) {
        bool dup = false;
        for (const obs::NearMiss& seen : out.near_misses) {
          dup = dup || (seen.goal == miss.goal &&
                        seen.table == miss.table && seen.fact == miss.fact);
        }
        if (!dup) out.near_misses.push_back(std::move(miss));
      }
      src->clear();
    };
    add(&out.analysis.near_misses);
    add(&rewritten.near_misses);
  }
  // The canonical *shape* fingerprint — catalog-version independent
  // with literals parameterized, so canonically-equal SQL counts as one
  // query class. The advisor dedups suggestions on it and the
  // time-series plane buckets per-class latencies under it.
  std::string canonical_text;
  if (auto canonical = cache::CanonicalizeSql(sql); canonical.ok()) {
    cache::FingerprintOptions fopts;
    fopts.parameterize_literals = true;
    out.class_fingerprint =
        cache::FingerprintSql(*canonical, /*catalog_version=*/0, fopts);
    canonical_text = canonical->text;
  }
  if (advise_ && !out.near_misses.empty() &&
      obs::AdvisorStore::Global().enabled()) {
    // The canonical text (literals intact, re-preparable) is kept as a
    // replay sample alongside each suggestion.
    for (const obs::NearMiss& miss : out.near_misses) {
      obs::AdvisorStore::Global().Record(miss, out.class_fingerprint,
                                         canonical_text);
    }
  }
  if (use_cost_model_) {
    static const PhaseDef kCost = MakePhaseDef("cost");
    Phase phase(kCost, &out.phase_ns);
    CostEstimator estimator(db_);
    std::vector<PlanAlternative> alternatives = StandardAlternatives(
        out.original_plan, out.optimized_plan, default_physical_.dop);
    size_t best = ChooseBestAlternative(estimator, &alternatives);
    out.cost_based = true;
    out.optimized_plan = alternatives[best].plan;
    out.chosen_physical = alternatives[best].physical;
    out.chosen_label = alternatives[best].label;
    out.chosen_estimate = alternatives[best].estimate;
    phase.span().AddAttr("chosen", out.chosen_label);
  }
  if (verify_plans_) {
    // After cost selection: verify the plan that will actually execute.
    static const PhaseDef kVerify = MakePhaseDef("verify");
    Phase phase(kVerify, &out.phase_ns);
    out.verification = Verify(out);
    out.verified = true;
    phase.span().AddAttr(
        "violations",
        static_cast<uint64_t>(out.verification.violations.size()));
  }
  out.plan_hash =
      obs::FingerprintPlanText(out.optimized_plan->ToString());
  return out;
}

namespace {

/// Approximate retained size of a prepared query for the cache's byte
/// budget. Plans are measured by their printed form (proportional to
/// node count); proof traces get a flat per-rewrite allowance.
size_t EstimatePreparedQueryBytes(const PreparedQuery& q) {
  size_t bytes = sizeof(PreparedQuery) + q.sql.size();
  if (q.original_plan != nullptr) {
    bytes += q.original_plan->ToString().size() * 2;
  }
  if (q.optimized_plan != nullptr) {
    bytes += q.optimized_plan->ToString().size() * 2;
  }
  for (const AppliedRewrite& r : q.rewrites) {
    bytes += 256 + r.description.size();
    for (const std::string& fact : r.evidence.facts) bytes += fact.size();
    if (r.evidence.before != nullptr) {
      bytes += r.evidence.before->ToString().size();
    }
    if (r.evidence.after != nullptr) {
      bytes += r.evidence.after->ToString().size();
    }
  }
  for (const auto& [name, ns] : q.phase_ns) {
    (void)ns;
    bytes += 32 + name.size();
  }
  for (const obs::NearMiss& miss : q.near_misses) {
    bytes += 64 + miss.goal.size() + miss.table.size() + miss.fact.size();
  }
  bytes += q.chosen_label.size();
  return bytes;
}

}  // namespace

Result<std::shared_ptr<const PreparedQuery>> Optimizer::PrepareShared(
    const std::string& sql, bool* cache_hit) const {
  if (cache_hit != nullptr) *cache_hit = false;
  // Per-class prepare latency for the time-series plane. With the plane
  // off (the default) `feed` is one relaxed load and no clock is read.
  obs::TimeSeriesPlane& plane = obs::TimeSeriesPlane::Global();
  const bool feed = plane.enabled();
  const auto feed_start =
      feed ? std::chrono::steady_clock::now()
           : std::chrono::steady_clock::time_point{};
  auto feed_sample = [&](const PreparedQuery& q) {
    if (!feed) return;
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - feed_start)
            .count());
    plane.RecordClassSample(q.class_fingerprint, "prepare.ns", ns,
                            /*record_id=*/0, q.plan_hash);
  };
  // Read the catalog version before preparing: if DDL lands mid-flight
  // the entry is stored under the older version and can never be
  // served after the bump.
  const uint64_t version = db_->catalog().version();
  uint64_t fingerprint = 0;
  bool cacheable = CacheUsable();
  if (cacheable) {
    auto canonical = cache::CanonicalizeSql(sql);
    if (canonical.ok()) {
      cache::FingerprintOptions fopts;
      // The verify and equiv flags shape what a PreparedQuery contains
      // (verification report / certificates present or not), so they
      // are part of the key. extra_fingerprint_salt_ isolates what-if
      // replay prepares from entries keyed to the real catalog.
      fopts.salt = (verify_plans_ ? 1 : 0) | (check_equiv_ ? 4 : 0) |
                   extra_fingerprint_salt_;
      // Physical defaults shape execution (dop, batch size, join and
      // distinct strategies), so prepares under different defaults get
      // distinct fingerprints.
      fopts.salt = cache::Fnv1aMix(fopts.salt, default_physical_.CacheSalt());
      fingerprint = cache::FingerprintSql(*canonical, version, fopts);
      if (cache::PlanCache::EntryPtr entry =
              cache_->Get(fingerprint, version)) {
        if (cache_hit != nullptr) *cache_hit = true;
        static obs::Counter& prepared_counter =
            obs::MetricsRegistry::Global().GetCounter(
                "optimizer.queries_prepared");
        prepared_counter.Increment();
        feed_sample(*entry);
        return entry;
      }
    } else {
      // Not lexable: fall through so the normal pipeline produces (and
      // records) the real diagnostic.
      cacheable = false;
    }
  }
  UNIQOPT_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareUncached(sql));
  auto entry =
      std::make_shared<const PreparedQuery>(std::move(prepared));
  if (cacheable) {
    cache_->Put(fingerprint, version, entry,
                EstimatePreparedQueryBytes(*entry));
  }
  feed_sample(*entry);
  return entry;
}

Result<PreparedQuery> Optimizer::Prepare(const std::string& sql) const {
  if (!CacheUsable()) return PrepareUncached(sql);
  bool hit = false;
  UNIQOPT_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> entry,
                           PrepareShared(sql, &hit));
  PreparedQuery out = *entry;
  out.cache_hit = hit;
  return out;
}

Result<std::vector<std::shared_ptr<const PreparedQuery>>>
Optimizer::PrepareBatch(std::span<const std::string> sqls,
                        unsigned threads) const {
  std::vector<std::shared_ptr<const PreparedQuery>> out(sqls.size());
  if (sqls.empty()) return out;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  if (threads > sqls.size()) {
    threads = static_cast<unsigned>(sqls.size());
  }
  std::atomic<size_t> next{0};
  std::mutex error_mu;
  size_t first_error_index = SIZE_MAX;
  Status first_error;
  auto worker = [&] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < sqls.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      auto r = PrepareShared(sqls[i]);
      if (r.ok()) {
        out[i] = std::move(*r);
      } else {
        std::lock_guard<std::mutex> lock(error_mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = r.status();
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& th : pool) th.join();
  if (first_error_index != SIZE_MAX) return first_error;
  return out;
}

verify::VerifyReport Optimizer::Verify(const PreparedQuery& query) const {
  verify::VerifyInput input;
  input.original = query.original_plan;
  input.optimized = query.optimized_plan;
  input.rewrites = &query.rewrites;
  input.analysis = &query.analysis;
  input.options = rewrite_options_.analysis;
  input.check_equiv = check_equiv_;
  return verify::VerifyPlan(input);
}

Result<std::vector<Row>> Optimizer::Execute(
    const PreparedQuery& query,
    const std::vector<std::pair<std::string, Value>>& params,
    const PhysicalOptions& physical, ExecStats* stats,
    ExecProfile* profile) const {
  ExecContext ctx;
  ctx.params.resize(query.host_vars.size());
  std::vector<bool> bound(query.host_vars.size(), false);
  for (const auto& [name, value] : params) {
    bool found = false;
    for (size_t i = 0; i < query.host_vars.size(); ++i) {
      if (EqualsIgnoreCase(query.host_vars[i].name, name)) {
        ctx.params[i] = value;
        bound[i] = true;
        found = true;
        break;
      }
    }
    if (!found) {
      Status st = Status::InvalidArgument("unknown host variable: " + name);
      RecordFailure(query.sql, st, query.phase_ns);
      return st;
    }
  }
  for (size_t i = 0; i < bound.size(); ++i) {
    if (!bound[i]) {
      Status st = Status::InvalidArgument("host variable not bound: :" +
                                          query.host_vars[i].name);
      RecordFailure(query.sql, st, query.phase_ns);
      return st;
    }
  }
  const PhysicalOptions& effective =
      query.cost_based ? query.chosen_physical : physical;
  obs::QueryRecord rec;
  rec.source = "optimizer";
  rec.query = query.sql;
  rec.plan_hash = query.plan_hash;
  rec.cache_hit = query.cache_hit;
  rec.phase_ns = query.phase_ns;
  for (const AppliedRewrite& r : query.rewrites) {
    rec.rewrites.emplace_back(RewriteRuleIdToString(r.rule), r.description);
  }
  rec.proof_summary = AnalysisSummary(query.analysis);
  for (const obs::NearMiss& miss : query.near_misses) {
    rec.near_misses.push_back(miss.ToString());
  }
  if (query.verified) {
    rec.verify_summary = query.verification.Summary();
    rec.verify_violations = query.verification.violations.size();
    rec.equiv_proven = query.verification.equiv_proven;
    rec.equiv_unproven = query.verification.equiv_unproven;
    rec.equiv_refuted = query.verification.equiv_refuted;
  }
  std::vector<Row> rows;
  Status exec_status;
  {
    // The Phase destructor appends the execute timing to rec.phase_ns,
    // so failure recording must wait until the block closes.
    static const PhaseDef kExecute = MakePhaseDef("execute");
    Phase phase(kExecute, &rec.phase_ns);
    static obs::Counter& executed_counter =
        obs::MetricsRegistry::Global().GetCounter(
            "optimizer.queries_executed");
    executed_counter.Increment();
    auto r = ExecutePlan(query.optimized_plan, *db_, &ctx, effective,
                         profile);
    if (r.ok()) {
      rows = std::move(*r);
      phase.span().AddAttr("rows", static_cast<uint64_t>(rows.size()));
    } else {
      exec_status = r.status();
    }
  }
  if (!exec_status.ok()) {
    RecordFailure(query.sql, exec_status, std::move(rec.phase_ns));
    return exec_status;
  }
  if (stats != nullptr) *stats = ctx.stats;
  rec.rows_out = rows.size();
  rec.rows_scanned = ctx.stats.rows_scanned;
  if (profile != nullptr) rec.profile_text = profile->ToText();
  for (const auto& [name, ns] : rec.phase_ns) rec.total_ns += ns;
  const uint64_t total_ns = rec.total_ns;
  uint64_t record_id = obs::QueryRecorder::Global().Record(std::move(rec));
  // Per-class end-to-end latency, exemplar-linked to the record just
  // written: an alert on this window resolves to that QueryRecord.
  obs::TimeSeriesPlane& plane = obs::TimeSeriesPlane::Global();
  if (plane.enabled()) {
    plane.RecordClassSample(query.class_fingerprint, "execute.ns",
                            total_ns, record_id, query.plan_hash);
  }
  // Mirror the per-execution work counters into the registry so they
  // accumulate across queries (\metrics, bench --metrics-json).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("exec.rows_scanned").Increment(ctx.stats.rows_scanned);
  reg.GetCounter("exec.rows_sorted").Increment(ctx.stats.rows_sorted);
  reg.GetCounter("exec.sort_comparisons")
      .Increment(ctx.stats.sort_comparisons);
  reg.GetCounter("exec.hash_probes").Increment(ctx.stats.hash_probes);
  reg.GetCounter("exec.hash_build_rows")
      .Increment(ctx.stats.hash_build_rows);
  reg.GetCounter("exec.inner_loop_rows")
      .Increment(ctx.stats.inner_loop_rows);
  reg.GetCounter("exec.rows_output").Increment(ctx.stats.rows_output);
  return rows;
}

Result<std::string> Optimizer::ExplainAnalyze(
    const PreparedQuery& query,
    const std::vector<std::pair<std::string, Value>>& params,
    const PhysicalOptions& physical) const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::CounterSnapshot before = reg.Counters();
  ExecProfile profile;
  ExecStats stats;
  auto start = std::chrono::steady_clock::now();
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Row> rows,
                           Execute(query, params, physical, &stats,
                                   &profile));
  auto elapsed = std::chrono::steady_clock::now() - start;
  uint64_t total_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count());
  obs::CounterSnapshot after = reg.Counters();

  std::string out = query.Explain();
  out += "-- execution profile --\n";
  out += profile.ToText();
  out += "-- executor stats --\n  " + stats.ToString() + "\n";
  out += "-- metrics delta --\n";
  std::string delta = obs::CounterDeltaToText(before, after);
  out += delta.empty() ? std::string("  (none)\n") : delta;
  out += "-- result --\n  " + std::to_string(rows.size()) + " row(s) in " +
         std::to_string(total_us) + "us\n";
  return out;
}

Result<std::vector<Row>> Optimizer::Query(
    const std::string& sql,
    const std::vector<std::pair<std::string, Value>>& params,
    const PhysicalOptions& physical, ExecStats* stats) const {
  UNIQOPT_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(sql));
  return Execute(prepared, params, physical, stats);
}

Result<UniquenessVerdict> Optimizer::AnalyzeSql(const std::string& sql) const {
  Binder binder(&db_->catalog());
  UNIQOPT_ASSIGN_OR_RETURN(BoundQuery bound, binder.BindSql(sql));
  return AnalyzeDistinct(bound.plan, rewrite_options_.analysis);
}

}  // namespace uniqopt
