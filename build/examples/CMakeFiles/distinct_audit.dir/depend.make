# Empty dependencies file for distinct_audit.
# This may be replaced when dependencies are built.
