file(REMOVE_RECURSE
  "CMakeFiles/ims_test.dir/ims_test.cc.o"
  "CMakeFiles/ims_test.dir/ims_test.cc.o.d"
  "ims_test"
  "ims_test.pdb"
  "ims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
