// Experiment X4/X5 (§5.2, Theorem 2 / Corollary 1, Examples 7 & 8):
// EXISTS subqueries versus their join rewrites.
//
// Series (Example 7 — unique inner match):
//  - NestedLoopExists:   the naive correlated strategy Kim/Pirahesh warn
//    about — inner table scanned per outer row;
//  - RewrittenJoin_Hash: Theorem 2 converts to a plain join, unlocking a
//    hash join.
// Series (Example 8 — many inner matches, Corollary 1):
//  - NestedLoopExists vs RewrittenDistinctJoin_Hash.
//
// Expected shape: nested-loop EXISTS is quadratic in table size; the
// rewrites stay near-linear, so the gap widens with scale (the paper's
// rationale for the transformation).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace uniqopt {
namespace bench {
namespace {

constexpr const char* kExample7 =
    "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
    "WHERE EXISTS (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND "
    "P.PNO = 3)";
constexpr const char* kExample8 =
    "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
    "WHERE EXISTS (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND "
    "P.COLOR = 'RED')";

void RunExists(benchmark::State& state, const char* sql, bool rewrite,
               PhysicalOptions::JoinStrategy join) {
  const Database& db =
      GetSupplierDb(static_cast<size_t>(state.range(0)), 10);
  PlanPtr plan = MustBind(db, sql);
  if (rewrite) plan = MustRewrite(plan);
  PhysicalOptions physical;
  physical.join = join;
  ExecStats stats;
  size_t rows = 0;
  for (auto _ : state) {
    rows = MustExecute(plan, db, physical, &stats);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["inner_rows"] =
      static_cast<double>(stats.inner_loop_rows);
  state.counters["hash_probes"] = static_cast<double>(stats.hash_probes);
}

// --- Example 7: Theorem 2 (inner key fully bound) ---------------------
void BM_Ex7_NestedLoopExists(benchmark::State& state) {
  RunExists(state, kExample7, /*rewrite=*/false,
            PhysicalOptions::JoinStrategy::kNestedLoop);
}
BENCHMARK(BM_Ex7_NestedLoopExists)->Arg(100)->Arg(500)->Arg(2000);

void BM_Ex7_RewrittenJoin_Hash(benchmark::State& state) {
  RunExists(state, kExample7, /*rewrite=*/true,
            PhysicalOptions::JoinStrategy::kHash);
}
BENCHMARK(BM_Ex7_RewrittenJoin_Hash)->Arg(100)->Arg(500)->Arg(2000);

// --- Example 8: Corollary 1 (outer duplicate-free, DISTINCT join) -----
void BM_Ex8_NestedLoopExists(benchmark::State& state) {
  RunExists(state, kExample8, /*rewrite=*/false,
            PhysicalOptions::JoinStrategy::kNestedLoop);
}
BENCHMARK(BM_Ex8_NestedLoopExists)->Arg(100)->Arg(500)->Arg(2000);

void BM_Ex8_RewrittenDistinctJoin_Hash(benchmark::State& state) {
  RunExists(state, kExample8, /*rewrite=*/true,
            PhysicalOptions::JoinStrategy::kHash);
}
BENCHMARK(BM_Ex8_RewrittenDistinctJoin_Hash)->Arg(100)->Arg(500)->Arg(2000);

// Hash semi-join (EXISTS executed smartly without any logical rewrite):
// shows the rewrite's value is unlocking strategy choice, not magic.
void BM_Ex8_HashSemiJoin(benchmark::State& state) {
  RunExists(state, kExample8, /*rewrite=*/false,
            PhysicalOptions::JoinStrategy::kHash);
}
BENCHMARK(BM_Ex8_HashSemiJoin)->Arg(100)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace bench
}  // namespace uniqopt

UNIQOPT_BENCH_MAIN();
