file(REMOVE_RECURSE
  "libuniqopt_ims.a"
)
