#ifndef UNIQOPT_OODB_OO_TRANSLATOR_H_
#define UNIQOPT_OODB_OO_TRANSLATOR_H_

#include <optional>
#include <string>

#include "oodb/navigator.h"
#include "plan/plan.h"

namespace uniqopt {
namespace oodb {

/// §6.2's point, made executable end to end: the *shape* of the logical
/// plan dictates the navigation strategy of an object database whose
/// relationships are child→parent OIDs. A join plan compiles to the
/// child-driven program (probe the child index, chase parent pointers,
/// test the parent predicate after the fault — Example 11 lines 36–42);
/// an EXISTS plan — produced by the join→subquery rewrite when Theorem 2
/// licenses it — compiles to the parent-driven program (range-scan the
/// parent index, probe children per parent; lines 43–48).

enum class OoStrategy { kChildDriven, kParentDriven };

const char* OoStrategyToString(OoStrategy s);

/// A compiled navigation program for queries of the Example 11 family:
///   SELECT <parent cols> FROM Supplier S [, Parts P]
///   WHERE [S.SNO range/eq] AND S.SNO = P.SNO AND P.PNO = <const>
/// (host variables resolved at run time).
struct OoProgram {
  OoStrategy strategy = OoStrategy::kChildDriven;
  /// Parent key bounds (inclusive); unset side = unbounded.
  std::optional<Value> parent_lo;
  std::optional<Value> parent_hi;
  std::optional<size_t> parent_lo_host;  ///< host var slots, when bound
  std::optional<size_t> parent_hi_host;  ///< to parameters
  /// Child PNO equality (the indexed probe).
  std::optional<Value> child_pno;
  std::optional<size_t> child_pno_host;
  /// Output columns within the parent (Supplier) object fields.
  std::vector<size_t> output_columns;

  std::string ToString() const;
};

/// Compiles `plan` into an OoProgram. Supported shapes:
///  - π[parent cols](σ[range ∧ join ∧ child eq](Supplier × Parts))
///    → child-driven;
///  - π[parent cols](Exists(σ[range](Supplier), Parts, join ∧ child eq))
///    → parent-driven.
/// Anything else: kUnsupported.
Result<OoProgram> TranslateOoPlan(const ObjectStore& store,
                                  const PlanPtr& plan);

/// Executes a compiled program with navigation-cost accounting.
StrategyResult RunOoProgram(const ObjectStore& store,
                            const OoProgram& program,
                            const std::vector<Value>& params = {});

}  // namespace oodb
}  // namespace uniqopt

#endif  // UNIQOPT_OODB_OO_TRANSLATOR_H_
