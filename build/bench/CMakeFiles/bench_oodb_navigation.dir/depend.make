# Empty dependencies file for bench_oodb_navigation.
# This may be replaced when dependencies are built.
