#ifndef UNIQOPT_PLAN_BINDER_H_
#define UNIQOPT_PLAN_BINDER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "parser/ast.h"
#include "plan/plan.h"

namespace uniqopt {

/// A host variable (`:NAME`) discovered while binding. Slot i of the
/// parameter vector passed to the executor supplies host_vars[i].
struct HostVariable {
  std::string name;
  TypeId type = TypeId::kInteger;
  bool type_known = false;
};

/// A fully bound query: logical plan plus its host-variable signature.
struct BoundQuery {
  PlanPtr plan;
  std::vector<HostVariable> host_vars;

  /// Convenience for tests: positional parameter slot of `name`.
  Result<size_t> HostVarSlot(const std::string& name) const;
};

/// Translates parse trees into logical plans over a catalog.
///
/// Scoping: correlated subqueries may reference columns of the
/// immediately enclosing query specification (the paper's queries are all
/// of this form); deeper correlation is reported as unsupported.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  /// Binds a query expression (spec or INTERSECT/EXCEPT chain).
  Result<BoundQuery> Bind(const Query& query);

  /// Parses and binds in one step.
  Result<BoundQuery> BindSql(std::string_view sql);

  /// Implementation detail, exposed so DDL binding (BuildTableDef) can
  /// reuse scalar-expression binding for CHECK constraints.
  class Impl;

 private:
  const Catalog* catalog_;
};

/// Builds a TableDef from a parsed CREATE TABLE: constructs the schema,
/// declares keys (PRIMARY KEY columns become NOT NULL) and binds CHECK
/// predicates against the table's own columns. CHECK predicates may not
/// contain host variables or subqueries.
Result<TableDef> BuildTableDef(const CreateTableStmt& stmt);

/// Parses `CREATE TABLE ...` SQL and registers it in `catalog`.
Status ExecuteCreateTable(std::string_view sql, Catalog* catalog);

/// Binds a scalar expression against a single table's schema (qualified
/// by the table name), for DML WHERE and SET clauses. Subqueries and
/// aggregates are rejected; host variables accumulate into *host_vars
/// (which may arrive non-empty — slots are shared across one
/// statement's clauses).
Result<ExprPtr> BindTableScalar(const Catalog* catalog, const TableDef& table,
                                const AstExpr& expr,
                                std::vector<HostVariable>* host_vars);

}  // namespace uniqopt

#endif  // UNIQOPT_PLAN_BINDER_H_
