#include "fd/attribute_set.h"

#include <bit>

namespace uniqopt {

void AttributeSet::Add(size_t attr) {
  size_t word = attr / 64;
  if (word >= words_.size()) words_.resize(word + 1, 0);
  words_[word] |= uint64_t{1} << (attr % 64);
}

void AttributeSet::Remove(size_t attr) {
  size_t word = attr / 64;
  if (word >= words_.size()) return;
  words_[word] &= ~(uint64_t{1} << (attr % 64));
  Trim();
}

bool AttributeSet::Contains(size_t attr) const {
  size_t word = attr / 64;
  if (word >= words_.size()) return false;
  return (words_[word] >> (attr % 64)) & 1;
}

bool AttributeSet::Empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

size_t AttributeSet::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

AttributeSet AttributeSet::Union(const AttributeSet& other) const {
  AttributeSet out = *this;
  out.UnionInPlace(other);
  return out;
}

void AttributeSet::UnionInPlace(const AttributeSet& other) {
  if (other.words_.size() > words_.size()) {
    words_.resize(other.words_.size(), 0);
  }
  for (size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

AttributeSet AttributeSet::Intersect(const AttributeSet& other) const {
  AttributeSet out;
  size_t n = std::min(words_.size(), other.words_.size());
  out.words_.resize(n, 0);
  for (size_t i = 0; i < n; ++i) out.words_[i] = words_[i] & other.words_[i];
  out.Trim();
  return out;
}

AttributeSet AttributeSet::Difference(const AttributeSet& other) const {
  AttributeSet out = *this;
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) out.words_[i] &= ~other.words_[i];
  out.Trim();
  return out;
}

bool AttributeSet::IsSubsetOf(const AttributeSet& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t theirs = i < other.words_.size() ? other.words_[i] : 0;
    if ((words_[i] & ~theirs) != 0) return false;
  }
  return true;
}

bool AttributeSet::Intersects(const AttributeSet& other) const {
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::vector<size_t> AttributeSet::ToVector() const {
  std::vector<size_t> out;
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t bits = words_[w];
    while (bits != 0) {
      int b = std::countr_zero(bits);
      out.push_back(w * 64 + static_cast<size_t>(b));
      bits &= bits - 1;
    }
  }
  return out;
}

AttributeSet AttributeSet::Shifted(size_t offset) const {
  AttributeSet out;
  if (words_.empty()) return out;
  // Word-wise shift: each word moves up `word_shift` slots, with the
  // spill into the next word when the offset is not word-aligned. One
  // allocation, no per-member set traversal.
  size_t word_shift = offset / 64;
  unsigned bit_shift = static_cast<unsigned>(offset % 64);
  out.words_.assign(words_.size() + word_shift + 1, 0);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i + word_shift] |= words_[i] << bit_shift;
    if (bit_shift != 0) {
      out.words_[i + word_shift + 1] |= words_[i] >> (64 - bit_shift);
    }
  }
  out.Trim();
  return out;
}

bool AttributeSet::operator==(const AttributeSet& other) const {
  size_t n = std::max(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    uint64_t a = i < words_.size() ? words_[i] : 0;
    uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

void AttributeSet::Trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

std::string AttributeSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (size_t a : ToVector()) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(a);
  }
  out += "}";
  return out;
}

}  // namespace uniqopt
