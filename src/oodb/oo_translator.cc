#include "oodb/oo_translator.h"

#include <limits>

#include "analysis/shape.h"
#include "common/string_util.h"
#include "expr/normalize.h"

namespace uniqopt {
namespace oodb {

const char* OoStrategyToString(OoStrategy s) {
  return s == OoStrategy::kChildDriven ? "child-driven" : "parent-driven";
}

std::string OoProgram::ToString() const {
  std::string out = std::string("OoProgram { ") + OoStrategyToString(strategy);
  auto bound = [](const std::optional<Value>& v,
                  const std::optional<size_t>& hv) -> std::string {
    if (hv.has_value()) return ":param";
    if (v.has_value()) return v->ToString();
    return "-inf/+inf";
  };
  out += ", SNO in [" + bound(parent_lo, parent_lo_host) + ", " +
         bound(parent_hi, parent_hi_host) + "]";
  if (child_pno.has_value() || child_pno_host.has_value()) {
    out += ", PNO = " + bound(child_pno, child_pno_host);
  }
  out += " }";
  return out;
}

namespace {

/// Bound side of a comparison: literal or host variable.
struct BoundValue {
  std::optional<Value> constant;
  std::optional<size_t> host_var;

  static std::optional<BoundValue> From(const ExprPtr& e) {
    if (e->kind() == ExprKind::kLiteral && !e->literal().is_null()) {
      return BoundValue{e->literal(), std::nullopt};
    }
    if (e->kind() == ExprKind::kHostVar) {
      return BoundValue{std::nullopt, e->host_var_index()};
    }
    return std::nullopt;
  }

  Value Resolve(const std::vector<Value>& params) const {
    return host_var.has_value() ? params.at(*host_var) : *constant;
  }
};

/// Accumulates predicate conjuncts into the program fields. `sno_col`
/// and `pno_col` are the product-schema positions of SUPPLIER.SNO and
/// PARTS.PNO (PNO absent for parent-only subtrees).
Status AbsorbConjunct(const ExprPtr& conj, size_t sno_col,
                      std::optional<size_t> pno_col,
                      std::optional<size_t> parts_sno_col,
                      OoProgram* program) {
  if (conj->kind() != ExprKind::kComparison) {
    return Status::Unsupported("untranslatable conjunct: " +
                               conj->ToString());
  }
  const ExprPtr& l = conj->child(0);
  const ExprPtr& r = conj->child(1);
  // The hierarchy join S.SNO = P.SNO is realized by the parent OID.
  if (parts_sno_col.has_value() && l->kind() == ExprKind::kColumnRef &&
      r->kind() == ExprKind::kColumnRef) {
    size_t a = l->column_index();
    size_t b = r->column_index();
    if ((a == sno_col && b == *parts_sno_col) ||
        (b == sno_col && a == *parts_sno_col)) {
      return Status::OK();
    }
    return Status::Unsupported("untranslatable join conjunct: " +
                               conj->ToString());
  }
  auto absorb = [&](const ExprPtr& col, const ExprPtr& value,
                    CompareOp op) -> Status {
    if (col->kind() != ExprKind::kColumnRef) {
      return Status::Unsupported("untranslatable conjunct: " +
                                 conj->ToString());
    }
    std::optional<BoundValue> bound = BoundValue::From(value);
    if (!bound.has_value()) {
      return Status::Unsupported("untranslatable operand: " +
                                 conj->ToString());
    }
    size_t idx = col->column_index();
    if (idx == sno_col) {
      switch (op) {
        case CompareOp::kGe:
          program->parent_lo = bound->constant;
          program->parent_lo_host = bound->host_var;
          return Status::OK();
        case CompareOp::kLe:
          program->parent_hi = bound->constant;
          program->parent_hi_host = bound->host_var;
          return Status::OK();
        case CompareOp::kEq:
          program->parent_lo = program->parent_hi = bound->constant;
          program->parent_lo_host = program->parent_hi_host =
              bound->host_var;
          return Status::OK();
        default:
          break;
      }
    }
    if (pno_col.has_value() && idx == *pno_col && op == CompareOp::kEq) {
      program->child_pno = bound->constant;
      program->child_pno_host = bound->host_var;
      return Status::OK();
    }
    return Status::Unsupported("untranslatable conjunct: " +
                               conj->ToString());
  };
  Status st = absorb(l, r, conj->compare_op());
  if (st.ok()) return st;
  return absorb(r, l, FlipCompareOp(conj->compare_op()));
}

bool IsSupplierGet(const SpecShape::BaseTable& bt) {
  return EqualsIgnoreCase(bt.get->table().name(), "SUPPLIER");
}
bool IsPartsGet(const SpecShape::BaseTable& bt) {
  return EqualsIgnoreCase(bt.get->table().name(), "PARTS");
}

}  // namespace

Result<OoProgram> TranslateOoPlan(const ObjectStore& store,
                                  const PlanPtr& plan) {
  (void)store;
  UNIQOPT_ASSIGN_OR_RETURN(SpecShape shape, ExtractSpecShape(plan));
  OoProgram program;

  // Locate the SUPPLIER (parent) table and, for join shapes, PARTS.
  const SpecShape::BaseTable* supplier = nullptr;
  const SpecShape::BaseTable* parts = nullptr;
  for (const SpecShape::BaseTable& bt : shape.tables) {
    if (IsSupplierGet(bt) && supplier == nullptr) {
      supplier = &bt;
    } else if (IsPartsGet(bt) && parts == nullptr) {
      parts = &bt;
    } else {
      return Status::Unsupported("unsupported FROM table: " +
                                 bt.get->table().name());
    }
  }
  if (supplier == nullptr) {
    return Status::Unsupported("query must involve the Supplier class");
  }
  size_t sno_col = supplier->offset;  // SNO is Supplier's first column

  // Projection must come from the parent side.
  size_t sup_end = supplier->offset + supplier->get->schema().num_columns();
  for (size_t col : shape.project->columns()) {
    if (col < supplier->offset || col >= sup_end) {
      return Status::Unsupported(
          "projection must use Supplier columns only");
    }
    program.output_columns.push_back(col - supplier->offset);
  }

  if (parts != nullptr) {
    // Join shape ⇒ child-driven navigation.
    if (!shape.exists_filters.empty()) {
      return Status::Unsupported("mixed join/exists shape");
    }
    program.strategy = OoStrategy::kChildDriven;
    size_t pno_col = parts->offset + 1;      // PARTS(SNO, PNO, ...)
    size_t parts_sno_col = parts->offset;    // inherited key column
    for (const ExprPtr& conj : shape.predicates) {
      UNIQOPT_RETURN_NOT_OK(AbsorbConjunct(conj, sno_col, pno_col,
                                           parts_sno_col, &program));
    }
  } else {
    // EXISTS shape ⇒ parent-driven navigation.
    if (shape.exists_filters.size() != 1 ||
        shape.exists_filters[0]->negated()) {
      return Status::Unsupported(
          "expected exactly one positive existential probe");
    }
    const ExistsNode* exists = shape.exists_filters[0];
    UNIQOPT_ASSIGN_OR_RETURN(SpecShape inner,
                             ExtractProductShape(exists->sub()));
    if (inner.tables.size() != 1 || !IsPartsGet(inner.tables[0])) {
      return Status::Unsupported("subquery must probe the Parts class");
    }
    program.strategy = OoStrategy::kParentDriven;
    size_t outer_width = exists->outer()->schema().num_columns();
    size_t pno_col = outer_width + 1;
    size_t parts_sno_col = outer_width;
    for (const ExprPtr& conj : shape.predicates) {
      UNIQOPT_RETURN_NOT_OK(AbsorbConjunct(conj, sno_col, std::nullopt,
                                           std::nullopt, &program));
    }
    for (const ExprPtr& conj : FlattenAnd(exists->correlation())) {
      UNIQOPT_RETURN_NOT_OK(AbsorbConjunct(conj, sno_col, pno_col,
                                           parts_sno_col, &program));
    }
    for (const ExprPtr& conj : inner.predicates) {
      // Inner-local predicates are based at the Parts view frame.
      UNIQOPT_RETURN_NOT_OK(AbsorbConjunct(
          conj, /*sno_col=*/static_cast<size_t>(-1),
          /*pno_col=*/1, /*parts_sno_col=*/std::nullopt, &program));
    }
  }
  if (!program.child_pno.has_value() && !program.child_pno_host.has_value() &&
      parts == nullptr) {
    return Status::Unsupported("existential probe needs a PNO equality");
  }
  return program;
}

StrategyResult RunOoProgram(const ObjectStore& store,
                            const OoProgram& program,
                            const std::vector<Value>& params) {
  auto resolve = [&](const std::optional<Value>& v,
                     const std::optional<size_t>& hv,
                     int64_t fallback) -> int64_t {
    if (hv.has_value()) return params.at(*hv).AsInteger();
    if (v.has_value()) return v->AsInteger();
    return fallback;
  };
  int64_t lo = resolve(program.parent_lo, program.parent_lo_host,
                       std::numeric_limits<int64_t>::min() / 2);
  int64_t hi = resolve(program.parent_hi, program.parent_hi_host,
                       std::numeric_limits<int64_t>::max() / 2);
  int64_t pno = resolve(program.child_pno, program.child_pno_host, 0);

  StrategyResult raw =
      program.strategy == OoStrategy::kChildDriven
          ? ChildDrivenSuppliersForPart(store, pno, lo, hi)
          : ParentDrivenSuppliersForPart(store, pno, lo, hi);
  // Apply the projection (the primitive strategies emit full Supplier
  // rows).
  StrategyResult out;
  out.stats = raw.stats;
  for (const Row& row : raw.rows) {
    out.rows.push_back(row.Project(program.output_columns));
  }
  return out;
}

}  // namespace oodb
}  // namespace uniqopt
